//! Distance index construction: single, bidirectional and adaptive
//! bidirectional hop-bounded search (§3.3, Figure 6(a) of the paper).
//!
//! All three strategies produce the same [`DistanceIndex`]: the forward
//! distances `Δ(s, v)` (computed without routing through `t`) and the
//! backward distances `Δ(v, t)` (computed without routing through `s`),
//! restricted to the search space `{v : Δ(s,v) + Δ(v,t) ≤ k}`. Vertices
//! outside the search space are treated as having distance `+∞`, exactly as
//! the paper prescribes, because the forward-looking pruning rule stops any
//! propagation into them anyway.
//!
//! The strategies differ only in the number of vertices and edges they touch
//! while computing the index, which is what the Figure 11 ablation measures;
//! [`SearchSpaceStats`] records those counts.

use crate::csr::{DiGraph, Direction, VertexId};
use crate::hash::{map_with_capacity, FxHashMap};
use crate::INF_DIST;

/// Strategy used to compute the [`DistanceIndex`] (§3.3, Figure 6(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceStrategy {
    /// Two independent single-directional BFS passes bounded by `k`.
    Single,
    /// Balanced bidirectional BFS: forward to depth `⌈k/2⌉`, backward to
    /// depth `⌊k/2⌋`, then each side finishes inside the other's explored
    /// region.
    Bidirectional,
    /// Adaptive bidirectional BFS: at every step the side with the smaller
    /// frontier advances, until the combined depth reaches `k`; each side
    /// then finishes inside the other's explored region. This is the default
    /// used by EVE.
    #[default]
    AdaptiveBidirectional,
}

impl DistanceStrategy {
    /// All strategies, in the order they appear in the Figure 11 ablation.
    pub const ALL: [DistanceStrategy; 3] = [
        DistanceStrategy::Single,
        DistanceStrategy::Bidirectional,
        DistanceStrategy::AdaptiveBidirectional,
    ];

    /// Short human-readable name used by the benchmark harness.
    pub fn name(self) -> &'static str {
        match self {
            DistanceStrategy::Single => "single",
            DistanceStrategy::Bidirectional => "bidirectional",
            DistanceStrategy::AdaptiveBidirectional => "adaptive",
        }
    }
}

/// Work counters for the distance phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchSpaceStats {
    /// Edges scanned top-down by the forward search (frontier relaxations,
    /// including the restricted extension phase of bidirectional search).
    pub forward_edge_scans: usize,
    /// Edges scanned top-down by the backward search.
    pub backward_edge_scans: usize,
    /// Reverse-adjacency entries probed by bottom-up (direction-optimizing)
    /// levels of the shared MS-BFS Phase-1 engine. Always 0 for the
    /// per-query engines, which only relax top-down; kept separate from the
    /// relaxation counters so direction switching stays observable instead
    /// of being folded into the top-down totals.
    pub bottom_up_edge_scans: usize,
    /// Vertices retained in the final search space.
    pub space_vertices: usize,
}

impl SearchSpaceStats {
    /// Total number of edge scans across both directions, top-down and
    /// bottom-up alike.
    pub fn total_edge_scans(&self) -> usize {
        self.forward_edge_scans + self.backward_edge_scans + self.bottom_up_edge_scans
    }
}

/// Level-synchronous hop-bounded BFS engine used by all strategies.
struct LevelBfs<'a> {
    g: &'a DiGraph,
    dir: Direction,
    source: VertexId,
    forbidden: VertexId,
    dist: FxHashMap<VertexId, u32>,
    frontier: Vec<VertexId>,
    depth: u32,
    edge_scans: usize,
}

impl<'a> LevelBfs<'a> {
    fn new(g: &'a DiGraph, dir: Direction, source: VertexId, forbidden: VertexId) -> Self {
        let mut dist = map_with_capacity(64);
        dist.insert(source, 0);
        LevelBfs {
            g,
            dir,
            source,
            forbidden,
            dist,
            frontier: vec![source],
            depth: 0,
            edge_scans: 0,
        }
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    fn exhausted(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Expands one BFS level. When `allowed` is provided, only vertices
    /// already present in that map may be newly discovered (the restricted
    /// "finish inside the other side's region" phase of bidirectional
    /// search). Returns `false` once the frontier is empty.
    fn step(&mut self, allowed: Option<&FxHashMap<VertexId, u32>>) -> bool {
        if self.frontier.is_empty() {
            return false;
        }
        let mut next: Vec<VertexId> = Vec::new();
        for i in 0..self.frontier.len() {
            let u = self.frontier[i];
            if u == self.forbidden && u != self.source {
                continue;
            }
            for &v in self.g.neighbors(u, self.dir) {
                self.edge_scans += 1;
                if self.dist.contains_key(&v) {
                    continue;
                }
                if let Some(allowed) = allowed {
                    if !allowed.contains_key(&v) {
                        continue;
                    }
                }
                self.dist.insert(v, self.depth + 1);
                next.push(v);
            }
        }
        self.depth += 1;
        self.frontier = next;
        !self.frontier.is_empty()
    }

    /// Runs `steps` additional levels (or until the frontier empties).
    fn run(&mut self, steps: u32, allowed: Option<&FxHashMap<VertexId, u32>>) {
        for _ in 0..steps {
            if !self.step(allowed) {
                break;
            }
        }
    }
}

/// Forward and backward shortest distances restricted to the k-hop search
/// space of a query `⟨s, t, k⟩`.
#[derive(Debug, Clone)]
pub struct DistanceIndex {
    s: VertexId,
    t: VertexId,
    k: u32,
    dist_from_s: FxHashMap<VertexId, u32>,
    dist_to_t: FxHashMap<VertexId, u32>,
    stats: SearchSpaceStats,
}

impl DistanceIndex {
    /// Computes the index for query `⟨s, t, k⟩` with the chosen strategy.
    pub fn compute(
        g: &DiGraph,
        s: VertexId,
        t: VertexId,
        k: u32,
        strategy: DistanceStrategy,
    ) -> DistanceIndex {
        assert!(
            s != t,
            "queries require distinct source and target vertices"
        );
        let mut forward = LevelBfs::new(g, Direction::Forward, s, t);
        let mut backward = LevelBfs::new(g, Direction::Backward, t, s);

        match strategy {
            DistanceStrategy::Single => {
                forward.run(k, None);
                backward.run(k, None);
            }
            DistanceStrategy::Bidirectional => {
                let kf = k.div_ceil(2);
                let kb = k / 2;
                forward.run(kf, None);
                backward.run(kb, None);
                let backward_snapshot = backward.dist.clone();
                forward.run(k - kf, Some(&backward_snapshot));
                let forward_snapshot = forward.dist.clone();
                backward.run(k - kb, Some(&forward_snapshot));
            }
            DistanceStrategy::AdaptiveBidirectional => {
                // Advance the smaller frontier until the combined depth is k
                // or one side is exhausted.
                while forward.depth + backward.depth < k
                    && !(forward.exhausted() && backward.exhausted())
                {
                    let advance_forward = if forward.exhausted() {
                        false
                    } else if backward.exhausted() {
                        true
                    } else {
                        forward.frontier_len() <= backward.frontier_len()
                    };
                    if advance_forward {
                        forward.step(None);
                    } else {
                        backward.step(None);
                    }
                }
                let backward_snapshot = backward.dist.clone();
                forward.run(k - forward.depth, Some(&backward_snapshot));
                let forward_snapshot = forward.dist.clone();
                backward.run(k - backward.depth, Some(&forward_snapshot));
            }
        }

        let mut dist_from_s: FxHashMap<VertexId, u32> = map_with_capacity(forward.dist.len());
        let mut dist_to_t: FxHashMap<VertexId, u32> = map_with_capacity(backward.dist.len());
        for (&v, &df) in &forward.dist {
            if let Some(&db) = backward.dist.get(&v) {
                if df + db <= k {
                    dist_from_s.insert(v, df);
                    dist_to_t.insert(v, db);
                }
            }
        }
        let stats = SearchSpaceStats {
            forward_edge_scans: forward.edge_scans,
            backward_edge_scans: backward.edge_scans,
            bottom_up_edge_scans: 0,
            space_vertices: dist_from_s.len(),
        };
        DistanceIndex {
            s,
            t,
            k,
            dist_from_s,
            dist_to_t,
            stats,
        }
    }

    /// Source vertex of the query.
    pub fn source(&self) -> VertexId {
        self.s
    }

    /// Target vertex of the query.
    pub fn target(&self) -> VertexId {
        self.t
    }

    /// Hop constraint of the query.
    pub fn hop_constraint(&self) -> u32 {
        self.k
    }

    /// Work counters recorded while building the index.
    pub fn stats(&self) -> SearchSpaceStats {
        self.stats
    }

    /// `Δ(s, v)` (not routing through `t`), or [`INF_DIST`] if `v` lies
    /// outside the search space.
    #[inline]
    pub fn dist_from_s(&self, v: VertexId) -> u32 {
        self.dist_from_s.get(&v).copied().unwrap_or(INF_DIST)
    }

    /// `Δ(v, t)` (not routing through `s`), or [`INF_DIST`] if `v` lies
    /// outside the search space.
    #[inline]
    pub fn dist_to_t(&self, v: VertexId) -> u32 {
        self.dist_to_t.get(&v).copied().unwrap_or(INF_DIST)
    }

    /// `true` if `v` belongs to the search space `Δ(s,v) + Δ(v,t) ≤ k`.
    #[inline]
    pub fn in_search_space(&self, v: VertexId) -> bool {
        self.dist_from_s.contains_key(&v)
    }

    /// `true` if the query is feasible, i.e. `t` is reachable from `s`
    /// within `k` hops (without the trivial `s = t` case).
    pub fn is_feasible(&self) -> bool {
        self.dist_from_s.contains_key(&self.t) && self.dist_to_t.contains_key(&self.s)
    }

    /// Shortest s-t distance `Δ(s, t)` if feasible.
    pub fn st_distance(&self) -> Option<u32> {
        self.dist_from_s.get(&self.t).copied()
    }

    /// Number of vertices in the search space.
    pub fn space_size(&self) -> usize {
        self.dist_from_s.len()
    }

    /// Iterator over the vertices of the search space.
    pub fn space_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.dist_from_s.keys().copied()
    }

    /// `true` if edge `(u, v)` can lie on *some* (not necessarily simple)
    /// s-t path within `k` hops: `Δ(s,u) + 1 + Δ(v,t) ≤ k`. This is the
    /// membership test of the k-hop subgraph `G^k_st` (§6.7).
    #[inline]
    pub fn edge_in_space(&self, u: VertexId, v: VertexId) -> bool {
        let du = self.dist_from_s(u);
        let dv = self.dist_to_t(v);
        du != INF_DIST && dv != INF_DIST && du + 1 + dv <= self.k
    }

    /// Approximate heap footprint of the index in bytes (used by the space
    /// accounting of Figure 9 / Figure 10(a)).
    pub fn memory_bytes(&self) -> usize {
        // Each map entry stores a key, a value and (amortised) hashing
        // overhead of roughly one extra word.
        (self.dist_from_s.len() + self.dist_to_t.len())
            * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1(a) graph; naming s=0, a=1, c=2, t=3, h=4, b=5, i=6, j=7.
    fn figure1() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (1, 6),
                (2, 3),
                (2, 5),
                (4, 5),
                (5, 3),
                (5, 1),
                (5, 7),
                (6, 7),
                (7, 4),
            ],
        )
    }

    #[test]
    fn strategies_agree_on_the_search_space() {
        let g = figure1();
        for k in 2..=8u32 {
            let single = DistanceIndex::compute(&g, 0, 3, k, DistanceStrategy::Single);
            let bi = DistanceIndex::compute(&g, 0, 3, k, DistanceStrategy::Bidirectional);
            let adaptive =
                DistanceIndex::compute(&g, 0, 3, k, DistanceStrategy::AdaptiveBidirectional);
            for v in g.vertices() {
                assert_eq!(single.dist_from_s(v), bi.dist_from_s(v), "k={k} v={v}");
                assert_eq!(single.dist_to_t(v), bi.dist_to_t(v), "k={k} v={v}");
                assert_eq!(
                    single.dist_from_s(v),
                    adaptive.dist_from_s(v),
                    "k={k} v={v}"
                );
                assert_eq!(single.dist_to_t(v), adaptive.dist_to_t(v), "k={k} v={v}");
            }
            assert_eq!(single.space_size(), adaptive.space_size());
        }
    }

    #[test]
    fn distances_match_figure1_expectations() {
        let g = figure1();
        let idx = DistanceIndex::compute(&g, 0, 3, 7, DistanceStrategy::AdaptiveBidirectional);
        assert!(idx.is_feasible());
        assert_eq!(idx.st_distance(), Some(2)); // s -> c -> t
        assert_eq!(idx.dist_from_s(1), 1); // s -> a
        assert_eq!(idx.dist_from_s(5), 2); // s -> c -> b
        assert_eq!(idx.dist_to_t(5), 1); // b -> t
        assert_eq!(idx.dist_to_t(6), 4); // i -> j -> h -> b -> t
        assert_eq!(idx.dist_to_t(1), 2); // a -> c -> t
    }

    #[test]
    fn search_space_excludes_far_vertices_for_small_k() {
        let g = figure1();
        // k = 3: vertex i (6) needs Δ(s,i)=2 and Δ(i,t)=4, sum 6 > 3.
        let idx = DistanceIndex::compute(&g, 0, 3, 3, DistanceStrategy::AdaptiveBidirectional);
        assert!(!idx.in_search_space(6));
        assert_eq!(idx.dist_from_s(6), INF_DIST);
        assert!(idx.in_search_space(2));
    }

    #[test]
    fn forward_distances_do_not_route_through_target() {
        // s -> t -> x: x is only reachable through t, so it must stay out of
        // the forward distance map.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 1)]);
        let idx = DistanceIndex::compute(&g, 0, 1, 5, DistanceStrategy::Single);
        assert!(idx.is_feasible());
        assert!(!idx.in_search_space(2));
    }

    #[test]
    fn infeasible_query_yields_empty_space() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let idx = DistanceIndex::compute(&g, 0, 3, 6, DistanceStrategy::AdaptiveBidirectional);
        assert!(!idx.is_feasible());
        assert_eq!(idx.space_size(), 0);
        assert_eq!(idx.st_distance(), None);
    }

    #[test]
    fn k_too_small_yields_empty_space() {
        let g = figure1();
        let idx = DistanceIndex::compute(&g, 0, 3, 1, DistanceStrategy::AdaptiveBidirectional);
        assert!(!idx.is_feasible());
    }

    #[test]
    fn edge_in_space_reflects_distance_sum() {
        let g = figure1();
        let idx = DistanceIndex::compute(&g, 0, 3, 4, DistanceStrategy::AdaptiveBidirectional);
        // e(s, c): 0 + 1 + 1 = 2 <= 4.
        assert!(idx.edge_in_space(0, 2));
        // e(i, j): Δ(s,i)=2, Δ(j,t)=3, 2+1+3=6 > 4.
        assert!(!idx.edge_in_space(6, 7));
    }

    #[test]
    fn adaptive_never_scans_more_than_single_on_skewed_graphs() {
        // A "broom": s has a single path to the hub, the hub fans out widely;
        // backward search from t is tiny, so adaptive should scan fewer
        // forward edges than single-directional.
        let fan = 200u32;
        let mut edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2)];
        for i in 0..fan {
            edges.push((2, 3 + i));
        }
        // target chain hanging off vertex 3 + fan
        let t = 3 + fan;
        edges.push((2, t));
        let g = DiGraph::from_edges(t as usize + 1, edges);
        let single = DistanceIndex::compute(&g, 0, t, 4, DistanceStrategy::Single);
        let adaptive = DistanceIndex::compute(&g, 0, t, 4, DistanceStrategy::AdaptiveBidirectional);
        assert_eq!(single.dist_from_s(t), adaptive.dist_from_s(t));
        assert!(
            adaptive.stats().total_edge_scans() <= single.stats().total_edge_scans(),
            "adaptive {} vs single {}",
            adaptive.stats().total_edge_scans(),
            single.stats().total_edge_scans()
        );
    }

    #[test]
    fn stats_and_memory_are_populated() {
        let g = figure1();
        let idx = DistanceIndex::compute(&g, 0, 3, 6, DistanceStrategy::AdaptiveBidirectional);
        assert!(idx.stats().total_edge_scans() > 0);
        assert_eq!(idx.stats().space_vertices, idx.space_size());
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.source(), 0);
        assert_eq!(idx.target(), 3);
        assert_eq!(idx.hop_constraint(), 6);
        let verts: Vec<_> = idx.space_vertices().collect();
        assert_eq!(verts.len(), idx.space_size());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_source_and_target_panics() {
        let g = figure1();
        DistanceIndex::compute(&g, 2, 2, 3, DistanceStrategy::Single);
    }
}
