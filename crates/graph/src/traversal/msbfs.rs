//! Bit-parallel multi-source hop-bounded bidirectional BFS (MS-BFS) with
//! direction-optimizing traversal.
//!
//! The EVE Phase 1 runs one hop-bounded bidirectional search per query. When
//! a batch contains many queries, most of that traversal work is repeated:
//! queries share endpoint pairs, and even unrelated queries walk the same
//! dense core of the graph. [`MsBfsEngine`] amortises that cost in the style
//! of *MS-BFS* (Then et al., VLDB 2015): up to [`MAX_LANES`] = 64 concurrent
//! **lanes** — one per distinct `(s, t)` endpoint pair — share a single pass
//! over the CSR, with one `u64` word per vertex whose bit *i* says "lane *i*
//! has reached this vertex". Setting bit *i* for the first time at level *d*
//! means `dist_i(v) = d`; per-level discovery records make those distances
//! recoverable per lane afterwards.
//!
//! Three properties of the per-query engine are folded into the word
//! operations, so cohort-shared answers stay bit-identical:
//!
//! * **Bidirectional scheduling.** A full-depth one-directional BFS
//!   saturates the graph (`O(d_avg^k)` vs the bidirectional
//!   `O(d_avg^{k/2})` meet-in-the-middle), which no amount of bit-
//!   parallelism pays back. Each lane therefore follows exactly the
//!   balanced-bidirectional schedule of the per-query
//!   [`FlatDistances`](crate::traversal::FlatDistances) engine: the forward
//!   side expands freely to `⌈k/2⌉`, the backward side to `⌊k/2⌋`, then
//!   each side finishes **restricted** — only vertices the other side has
//!   already discovered may be newly discovered. Lanes with different `k`
//!   pause at different levels; a per-vertex *paused* word parks a lane's
//!   frontier at its half-depth and the restricted phase resumes all lanes
//!   level-synchronously (lane *i*'s restricted level *c* means distance
//!   `half_i + c`).
//! * **Per-lane avoid vertices.** EVE's forward distances `Δ(s, v)` never
//!   route *through* `t` (and the backward ones never through `s`): paths
//!   revisiting an endpoint cannot be simple. A per-vertex forbid word
//!   masks a lane's bit out of every expansion *from* its avoided endpoint
//!   while still allowing that vertex to be discovered. This is also why
//!   lanes are keyed by the `(s, t)` *pair* rather than the bare source:
//!   two queries from one source with different targets need different
//!   avoid vertices, and merging them would change distances (and answers)
//!   whenever the only shortest route to some vertex passes through one of
//!   the targets.
//! * **Per-lane hop budgets.** Lane *i* stops discovering at its own depth
//!   budget; per-level active masks retire exhausted lanes, so recorded
//!   distances are exactly the hop-bounded set a per-query run produces.
//!
//! Within every phase, each level is expanded either **top-down** (scan the
//! frontier's adjacency and OR its word into the neighbours) or
//! **bottom-up** (scan still-undiscovered vertices and gather the frontier
//! words of their reverse neighbours, with early exit once every
//! still-possible lane has been found) in the style of Beamer's
//! direction-optimizing BFS. The switch is per level: bottom-up is chosen
//! once the frontier is incident to at least `1 /`
//! [`DIRECTION_SWITCH_DENOMINATOR`] of all edges. [`MsBfsStats`] counts both
//! kinds of edge scan separately so the switching stays observable.

use crate::budget::{BudgetExhausted, QueryBudget};
use crate::csr::{DiGraph, Direction, VertexId};
use crate::traversal::SearchSpaceStats;

/// Maximum number of concurrent BFS lanes (one bit per lane in a `u64`).
pub const MAX_LANES: usize = 64;

/// Frontier density at which a level switches to bottom-up: bottom-up is
/// used when the frontier's incident edges exceed `edge_count / 2`. The
/// bar is deliberately much higher than Beamer's single-source α ≈ 14
/// because a 64-lane bottom-up gather can only early-exit once *every*
/// still-possible lane has been found, which is rare while many lanes are
/// active — so bottom-up only pays once the frontier is incident to about
/// half of all edges (the `batch_phase1` benchmark is the tuning harness).
pub const DIRECTION_SWITCH_DENOMINATOR: usize = 2;

/// One BFS lane: a distinct `(source, target)` endpoint pair and its hop
/// budget. The forward side starts at `source` avoiding `target`; the
/// backward side starts at `target` avoiding `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsBfsLane {
    /// Query source `s` (forward distance 0).
    pub source: VertexId,
    /// Query target `t` (backward distance 0; must differ from `source`).
    pub target: VertexId,
    /// Hop budget: the lane records forward + backward distances whose
    /// filtered sum can reach `depth` (0 records only the endpoints).
    pub depth: u32,
}

impl MsBfsLane {
    /// Free forward levels of the balanced bidirectional schedule, `⌈k/2⌉`.
    #[inline]
    fn half_fwd(&self) -> u32 {
        self.depth.div_ceil(2)
    }

    /// Free backward levels, `⌊k/2⌋`.
    #[inline]
    fn half_bwd(&self) -> u32 {
        self.depth / 2
    }
}

/// Per-level expansion policy of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontierMode {
    /// Choose top-down or bottom-up per level by frontier density (the
    /// default, and what production cohorts use).
    #[default]
    DirectionOptimizing,
    /// Always relax frontier adjacency (classic BFS); the baseline the
    /// `batch_phase1` benchmark compares against.
    TopDownOnly,
    /// Always gather from reverse adjacency (for tests and worst-case
    /// measurements; correct but wasteful on sparse frontiers).
    BottomUpOnly,
}

/// Work counters of one side of an [`MsBfsEngine::run`], split by expansion
/// direction so the direction-optimizing switch is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsBfsStats {
    /// Adjacency entries scanned by top-down levels (frontier relaxations).
    pub top_down_edge_scans: usize,
    /// Reverse-adjacency entries probed by bottom-up levels (including
    /// probes cut short by the early exit).
    pub bottom_up_edge_scans: usize,
    /// Levels expanded top-down.
    pub top_down_levels: usize,
    /// Levels expanded bottom-up.
    pub bottom_up_levels: usize,
}

impl MsBfsStats {
    /// Total edges scanned in either direction.
    pub fn total_edge_scans(&self) -> usize {
        self.top_down_edge_scans + self.bottom_up_edge_scans
    }

    /// Folds this side's counters into a [`SearchSpaceStats`]: top-down
    /// scans land on the side given by `dir` (forward side → forward
    /// scans), bottom-up scans are accounted separately.
    pub fn accumulate_into(&self, stats: &mut SearchSpaceStats, dir: Direction) {
        match dir {
            Direction::Forward => stats.forward_edge_scans += self.top_down_edge_scans,
            Direction::Backward => stats.backward_edge_scans += self.top_down_edge_scans,
        }
        stats.bottom_up_edge_scans += self.bottom_up_edge_scans;
    }
}

/// One traversal side (forward from the sources or backward from the
/// targets) with its bit arrays and discovery records.
#[derive(Debug, Clone, Default)]
struct Side {
    /// Bit *i* set ⇒ lane *i* has discovered this vertex on this side.
    seen: Vec<u64>,
    /// Bits discovered exactly at the current level.
    frontier_bits: Vec<u64>,
    /// Bits being discovered at the level under construction.
    next_bits: Vec<u64>,
    /// Bit *i* set ⇒ this vertex is lane *i*'s avoided endpoint on this
    /// side (discoverable, never expanded from).
    forbid: Vec<u64>,
    /// Frontier bits parked at each lane's half-depth, waiting for the
    /// restricted phase.
    paused_bits: Vec<u64>,
    /// Vertices with a non-zero `frontier_bits` word.
    frontier: Vec<VertexId>,
    /// Vertices with a non-zero `next_bits` word.
    next: Vec<VertexId>,
    /// Vertices with a non-zero `paused_bits` word.
    paused: Vec<VertexId>,
    /// `(vertex, bits first set at that level)` for the free phase,
    /// grouped by level: level `d` distances are `d`.
    records_free: Vec<(VertexId, u64)>,
    offsets_free: Vec<usize>,
    /// Restricted-phase records, grouped by resumed level: lane *i* bits at
    /// level `c` mean distance `half_i + c`.
    records_restricted: Vec<(VertexId, u64)>,
    offsets_restricted: Vec<usize>,
    stats: MsBfsStats,
}

impl Side {
    fn begin(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
            self.frontier_bits.resize(n, 0);
            self.next_bits.resize(n, 0);
            self.forbid.resize(n, 0);
            self.paused_bits.resize(n, 0);
        }
        debug_assert!(
            self.seen.iter().all(|&w| w == 0)
                && self.forbid.iter().all(|&w| w == 0)
                && self.paused_bits.iter().all(|&w| w == 0),
            "bit arrays must be all-zero between runs"
        );
        self.records_free.clear();
        self.offsets_free.clear();
        self.records_restricted.clear();
        self.offsets_restricted.clear();
        self.frontier.clear();
        self.next.clear();
        self.paused.clear();
        self.stats = MsBfsStats::default();
    }

    /// Seeds lane `i` at `start` avoiding `avoid`.
    fn seed(&mut self, i: usize, start: VertexId, avoid: VertexId) {
        let bit = 1u64 << i;
        if self.frontier_bits[start as usize] == 0 {
            self.frontier.push(start);
        }
        self.frontier_bits[start as usize] |= bit;
        self.seen[start as usize] |= bit;
        self.forbid[avoid as usize] |= bit;
    }

    /// Records the current frontier as one level of `records_free`.
    fn record_free_level(&mut self) {
        for &v in &self.frontier {
            self.records_free.push((v, self.frontier_bits[v as usize]));
        }
        self.offsets_free.push(self.records_free.len());
    }

    /// Parks the frontier bits of `pause_mask` lanes for the restricted
    /// phase (their free budget ends at the current level).
    fn pause(&mut self, pause_mask: u64) {
        if pause_mask == 0 {
            return;
        }
        for &v in &self.frontier {
            let bits = self.frontier_bits[v as usize] & pause_mask;
            if bits != 0 {
                if self.paused_bits[v as usize] == 0 {
                    self.paused.push(v);
                }
                self.paused_bits[v as usize] |= bits;
            }
        }
    }

    /// Promotes `next` to the frontier, leaving the old arrays all-zero.
    fn advance(&mut self) {
        for &u in &self.frontier {
            self.frontier_bits[u as usize] = 0;
        }
        std::mem::swap(&mut self.frontier_bits, &mut self.next_bits);
        std::mem::swap(&mut self.frontier, &mut self.next);
        self.next.clear();
    }

    /// Replaces the frontier with the paused set (restricted-phase start).
    fn resume_from_paused(&mut self) {
        for &u in &self.frontier {
            self.frontier_bits[u as usize] = 0;
        }
        self.frontier.clear();
        std::mem::swap(&mut self.frontier_bits, &mut self.paused_bits);
        std::mem::swap(&mut self.frontier, &mut self.paused);
    }

    /// Expands one level. `level_mask` holds the lanes still in budget;
    /// `restrict` is the other side's seen array during the restricted
    /// phase (a lane may then only discover vertices the other side has
    /// seen). Returns `true` if anything was discovered.
    fn step(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        level_mask: u64,
        restrict: Option<&[u64]>,
        mode: FrontierMode,
    ) -> bool {
        let bottom_up = match mode {
            FrontierMode::TopDownOnly => false,
            FrontierMode::BottomUpOnly => true,
            FrontierMode::DirectionOptimizing => {
                let frontier_edges: usize = self
                    .frontier
                    .iter()
                    .map(|&u| g.neighbors(u, dir).len())
                    .sum();
                frontier_edges * DIRECTION_SWITCH_DENOMINATOR >= g.edge_count().max(1)
            }
        };
        if bottom_up {
            self.step_bottom_up(g, dir, level_mask, restrict);
        } else {
            self.step_top_down(g, dir, level_mask, restrict);
        }
        !self.next.is_empty()
    }

    /// Classic frontier relaxation: scan the adjacency of every frontier
    /// vertex and OR its (forbid-masked) word into each neighbour.
    fn step_top_down(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        level_mask: u64,
        restrict: Option<&[u64]>,
    ) {
        self.stats.top_down_levels += 1;
        let frontier = std::mem::take(&mut self.frontier);
        for &u in &frontier {
            let mask = self.frontier_bits[u as usize] & !self.forbid[u as usize] & level_mask;
            if mask == 0 {
                continue;
            }
            for &v in g.neighbors(u, dir) {
                self.stats.top_down_edge_scans += 1;
                let mut new = mask & !self.seen[v as usize];
                if let Some(other_seen) = restrict {
                    new &= other_seen[v as usize];
                }
                if new != 0 {
                    if self.next_bits[v as usize] == 0 {
                        self.next.push(v);
                    }
                    self.next_bits[v as usize] |= new;
                    self.seen[v as usize] |= new;
                }
            }
        }
        self.frontier = frontier;
    }

    /// Beamer-style bottom-up level: every vertex that some active lane
    /// could still discover gathers the frontier words of its reverse
    /// neighbours, stopping early once all still-possible lanes are found.
    fn step_bottom_up(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        level_mask: u64,
        restrict: Option<&[u64]>,
    ) {
        self.stats.bottom_up_levels += 1;
        let gather_dir = dir.flipped();
        for v in 0..g.vertex_count() as VertexId {
            let mut possible = level_mask & !self.seen[v as usize];
            if let Some(other_seen) = restrict {
                possible &= other_seen[v as usize];
            }
            if possible == 0 {
                continue;
            }
            let mut gathered = 0u64;
            for &u in g.neighbors(v, gather_dir) {
                self.stats.bottom_up_edge_scans += 1;
                gathered |= self.frontier_bits[u as usize] & !self.forbid[u as usize];
                if gathered & possible == possible {
                    break;
                }
            }
            let new = gathered & possible;
            if new != 0 {
                self.next.push(v);
                self.next_bits[v as usize] = new;
                self.seen[v as usize] |= new;
            }
        }
    }

    /// Restores the all-zero invariant after a run: every vertex with a
    /// set bit appears in a record, so this touches only what the run
    /// discovered.
    fn cleanup(&mut self, lanes: &[MsBfsLane], avoid_of: impl Fn(&MsBfsLane) -> VertexId) {
        for &(v, _) in self.records_free.iter().chain(&self.records_restricted) {
            self.seen[v as usize] = 0;
            self.frontier_bits[v as usize] = 0;
            self.paused_bits[v as usize] = 0;
        }
        for lane in lanes {
            self.forbid[avoid_of(lane) as usize] = 0;
        }
        self.frontier.clear();
        self.paused.clear();
    }

    fn retained_bytes(&self) -> usize {
        let words = self.seen.capacity()
            + self.frontier_bits.capacity()
            + self.next_bits.capacity()
            + self.forbid.capacity()
            + self.paused_bits.capacity();
        words * std::mem::size_of::<u64>()
            + (self.frontier.capacity() + self.next.capacity() + self.paused.capacity())
                * std::mem::size_of::<VertexId>()
            + (self.records_free.capacity() + self.records_restricted.capacity())
                * std::mem::size_of::<(VertexId, u64)>()
            + (self.offsets_free.capacity() + self.offsets_restricted.capacity())
                * std::mem::size_of::<usize>()
    }
}

/// Reusable bit-parallel multi-source bidirectional BFS engine (see the
/// module docs).
///
/// All buffers are retained across runs; between runs the graph-sized bit
/// arrays are kept all-zero (reset touches only the vertices the previous
/// run discovered), so a warmed engine performs no per-run allocation and
/// no O(n) clearing.
#[derive(Debug, Clone, Default)]
pub struct MsBfsEngine {
    fwd: Side,
    bwd: Side,
    /// `half_fwd` per lane, for restricted-level distance reconstruction.
    halves_fwd: Vec<u32>,
    /// `half_bwd` per lane.
    halves_bwd: Vec<u32>,
    mode: FrontierMode,
    lane_count: usize,
}

impl MsBfsEngine {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        MsBfsEngine::default()
    }

    /// Sets the per-level expansion policy for subsequent runs.
    pub fn set_mode(&mut self, mode: FrontierMode) {
        self.mode = mode;
    }

    /// The current expansion policy.
    pub fn mode(&self) -> FrontierMode {
        self.mode
    }

    /// Runs one shared bidirectional hop-bounded search over `lanes`,
    /// following the per-query balanced-bidirectional schedule lane by
    /// lane: forward free to `⌈k/2⌉` (pausing each lane's frontier at its
    /// own half-depth), backward free to `⌊k/2⌋`, then each side finishes
    /// restricted to the other side's discovered region. Backward levels
    /// walk the in-adjacency, so the reversed CSR is never materialised.
    ///
    /// Results stay readable (via [`MsBfsEngine::for_each_lane_distance`])
    /// until the next `run`.
    ///
    /// # Panics
    /// Panics if `lanes` is empty or longer than [`MAX_LANES`], or if any
    /// lane has `source == target` or an endpoint outside the graph.
    pub fn run(&mut self, g: &DiGraph, lanes: &[MsBfsLane]) {
        self.run_budgeted(g, lanes, &QueryBudget::unlimited())
            .expect("an unlimited budget never trips"); // spg-analyze: allow(no-panic) — unlimited budgets cannot trip
    }

    /// [`MsBfsEngine::run`] under a cooperative [`QueryBudget`], charged one
    /// unit per edge scanned and polled at every level boundary of every
    /// phase. On `Err` the traversal stops within one level of the ceiling,
    /// the partial results are discarded (reading them panics, exactly like
    /// an engine that never ran), and — crucially for workspace reuse — the
    /// graph-sized bit arrays are restored to all-zero, so the engine is
    /// immediately reusable for the next run.
    ///
    /// # Panics
    /// As [`MsBfsEngine::run`].
    pub fn run_budgeted(
        &mut self,
        g: &DiGraph,
        lanes: &[MsBfsLane],
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        assert!(
            !lanes.is_empty() && lanes.len() <= MAX_LANES,
            "MS-BFS cohorts hold 1..={MAX_LANES} lanes, got {}",
            lanes.len()
        );
        let n = g.vertex_count();
        self.fwd.begin(n);
        self.bwd.begin(n);
        self.halves_fwd.clear();
        self.halves_bwd.clear();
        self.lane_count = lanes.len();
        for (i, lane) in lanes.iter().enumerate() {
            assert!(
                (lane.source as usize) < n && (lane.target as usize) < n,
                "lane {i} endpoints must lie inside the graph"
            );
            assert!(
                lane.source != lane.target,
                "lane {i}: source and target must be distinct"
            );
            self.fwd.seed(i, lane.source, lane.target);
            self.bwd.seed(i, lane.target, lane.source);
            self.halves_fwd.push(lane.half_fwd());
            self.halves_bwd.push(lane.half_bwd());
        }
        // Record the seed level of both sides up front: every set bit is
        // then always covered by a record, which is what lets an abort at
        // any level boundary restore the all-zero invariant via `cleanup`.
        self.fwd.record_free_level();
        self.bwd.record_free_level();

        let mode = self.mode;
        // Free phases: each side expands to its per-lane half-depth.
        let mut outcome = Self::free_phase(
            &mut self.fwd,
            g,
            Direction::Forward,
            &self.halves_fwd,
            mode,
            budget,
        );
        if outcome.is_ok() {
            outcome = Self::free_phase(
                &mut self.bwd,
                g,
                Direction::Backward,
                &self.halves_bwd,
                mode,
                budget,
            );
        }
        // Restricted phases: resume the paused frontiers; lane i's budget is
        // depth_i − half_i further levels, each discovery gated on the other
        // side's seen set. The backward pass runs after (and therefore
        // sees) the forward restricted discoveries, mirroring the
        // sequential engine.
        if outcome.is_ok() {
            outcome = Self::restricted_phase(
                &mut self.fwd,
                g,
                Direction::Forward,
                lanes,
                &self.halves_fwd,
                &self.bwd.seen,
                mode,
                budget,
            );
        }
        if outcome.is_ok() {
            outcome = Self::restricted_phase(
                &mut self.bwd,
                g,
                Direction::Backward,
                lanes,
                &self.halves_bwd,
                &self.fwd.seen,
                mode,
                budget,
            );
        }

        self.fwd.cleanup(lanes, |lane| lane.target);
        self.bwd.cleanup(lanes, |lane| lane.source);
        if outcome.is_err() {
            // Partial distances must never be readable: drop the records and
            // present as an engine that has not run.
            self.fwd.records_free.clear();
            self.fwd.offsets_free.clear();
            self.fwd.records_restricted.clear();
            self.fwd.offsets_restricted.clear();
            self.bwd.records_free.clear();
            self.bwd.offsets_free.clear();
            self.bwd.records_restricted.clear();
            self.bwd.offsets_restricted.clear();
            self.lane_count = 0;
        }
        outcome
    }

    /// Free phase of one side: level-synchronous expansion where lane `i`
    /// participates while the next level stays within `halves[i]`, parking
    /// its frontier in the paused set once its half-budget is spent. The
    /// seed level is recorded by the caller (see `run_budgeted`); the budget
    /// is polled only at level boundaries, where every set bit is covered
    /// by a record and an abort can restore the all-zero invariant.
    fn free_phase(
        side: &mut Side,
        g: &DiGraph,
        dir: Direction,
        halves: &[u32],
        mode: FrontierMode,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        let mut depth = 0u32;
        let mut charged = 0usize;
        loop {
            let scans = side.stats.total_edge_scans();
            budget.charge((scans - charged) as u64)?;
            charged = scans;
            let pause_mask = lane_mask(halves, |&h| h == depth);
            side.pause(pause_mask);
            if side.frontier.is_empty() {
                break;
            }
            let level_mask = lane_mask(halves, |&h| h > depth);
            if level_mask == 0 {
                break;
            }
            if !side.step(g, dir, level_mask, None, mode) {
                side.advance();
                break;
            }
            side.advance();
            side.record_free_level();
            depth += 1;
        }
        budget.charge((side.stats.total_edge_scans() - charged) as u64)?;
        Ok(())
    }

    /// Restricted phase of one side: resume from the paused frontiers and
    /// expand while any lane has remaining budget (`depth_i − half_i`
    /// levels), discovering only vertices in `other_seen`.
    #[allow(clippy::too_many_arguments)]
    fn restricted_phase(
        side: &mut Side,
        g: &DiGraph,
        dir: Direction,
        lanes: &[MsBfsLane],
        halves: &[u32],
        other_seen: &[u64],
        mode: FrontierMode,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        side.resume_from_paused();
        let mut c = 0u32;
        let mut charged = side.stats.total_edge_scans();
        loop {
            let scans = side.stats.total_edge_scans();
            budget.charge((scans - charged) as u64)?;
            charged = scans;
            if side.frontier.is_empty() {
                break;
            }
            let level_mask = lanes
                .iter()
                .zip(halves)
                .enumerate()
                .filter(|(_, (lane, &half))| lane.depth - half > c)
                .fold(0u64, |mask, (i, _)| mask | (1u64 << i));
            if level_mask == 0 {
                break;
            }
            let discovered = side.step(g, dir, level_mask, Some(other_seen), mode);
            side.advance();
            if !discovered {
                break;
            }
            for i in 0..side.frontier.len() {
                let v = side.frontier[i];
                side.records_restricted
                    .push((v, side.frontier_bits[v as usize]));
            }
            side.offsets_restricted.push(side.records_restricted.len());
            c += 1;
        }
        budget.charge((side.stats.total_edge_scans() - charged) as u64)?;
        Ok(())
    }

    /// Number of lanes of the last run.
    pub fn lane_count(&self) -> usize {
        self.lane_count
    }

    /// Visits every `(vertex, distance)` the given lane discovered on one
    /// side in the last run — forward distances `Δ(s, v)` for
    /// [`Direction::Forward`], backward distances `Δ(v, t)` for
    /// [`Direction::Backward`] — in ascending distance order. Includes the
    /// side's start vertex at distance 0.
    ///
    /// # Panics
    /// Panics if `lane` is not a lane index of the last run.
    pub fn for_each_lane_distance<F: FnMut(VertexId, u32)>(
        &self,
        dir: Direction,
        lane: usize,
        f: F,
    ) {
        self.for_each_lane_distance_to_depth(dir, lane, u32::MAX, f);
    }

    /// [`MsBfsEngine::for_each_lane_distance`] truncated to distances
    /// `≤ max_depth`. A query served by a deeper shared lane (the lane's
    /// budget is the maximum `k` of the queries sharing its pair) never
    /// consumes entries past its own `k` — the search-space filter would
    /// discard them anyway — so the materialisation loop can stop early.
    pub fn for_each_lane_distance_to_depth<F: FnMut(VertexId, u32)>(
        &self,
        dir: Direction,
        lane: usize,
        max_depth: u32,
        mut f: F,
    ) {
        assert!(lane < self.lane_count, "lane {lane} out of range");
        let (side, halves) = match dir {
            Direction::Forward => (&self.fwd, &self.halves_fwd),
            Direction::Backward => (&self.bwd, &self.halves_bwd),
        };
        let bit = 1u64 << lane;
        let mut start = 0usize;
        for (d, &end) in side.offsets_free.iter().enumerate() {
            if d as u32 > max_depth {
                break;
            }
            for &(v, bits) in &side.records_free[start..end] {
                if bits & bit != 0 {
                    f(v, d as u32);
                }
            }
            start = end;
        }
        let half = halves[lane];
        if half >= max_depth {
            return;
        }
        let mut start = 0usize;
        for (c, &end) in side.offsets_restricted.iter().enumerate() {
            let dist = half + c as u32 + 1;
            if dist > max_depth {
                break;
            }
            for &(v, bits) in &side.records_restricted[start..end] {
                if bits & bit != 0 {
                    f(v, dist);
                }
            }
            start = end;
        }
    }

    /// Work counters of one side of the last run.
    pub fn side_stats(&self, dir: Direction) -> MsBfsStats {
        match dir {
            Direction::Forward => self.fwd.stats,
            Direction::Backward => self.bwd.stats,
        }
    }

    /// Bytes of buffer capacity retained for reuse across runs.
    pub fn retained_bytes(&self) -> usize {
        self.fwd.retained_bytes()
            + self.bwd.retained_bytes()
            + (self.halves_fwd.capacity() + self.halves_bwd.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Bitmask of lane indices whose entry in `values` satisfies `pred`.
fn lane_mask<T>(values: &[T], pred: impl Fn(&T) -> bool) -> u64 {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| pred(v))
        .fold(0u64, |mask, (i, _)| mask | (1u64 << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{DistanceStrategy, FlatDistances};
    use crate::INF_DIST;

    /// Figure 1(a) graph; naming s=0, a=1, c=2, t=3, h=4, b=5, i=6, j=7.
    fn figure1() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (1, 6),
                (2, 3),
                (2, 5),
                (4, 5),
                (5, 3),
                (5, 1),
                (5, 7),
                (6, 7),
                (7, 4),
            ],
        )
    }

    fn lane_distances(engine: &MsBfsEngine, dir: Direction, lane: usize, n: usize) -> Vec<u32> {
        let mut dist = vec![INF_DIST; n];
        engine.for_each_lane_distance(dir, lane, |v, d| {
            assert_eq!(dist[v as usize], INF_DIST, "vertex {v} recorded twice");
            dist[v as usize] = d;
        });
        dist
    }

    /// One lane must reproduce the per-query balanced-bidirectional raw
    /// distances exactly — it is the same schedule, word-parallel.
    #[test]
    fn single_lane_matches_bidirectional_flat_distances() {
        let g = figure1();
        let mut engine = MsBfsEngine::new();
        let mut flat = FlatDistances::new();
        for k in 1..=8u32 {
            flat.compute(&g, 0, 3, k, DistanceStrategy::Bidirectional);
            engine.run(
                &g,
                &[MsBfsLane {
                    source: 0,
                    target: 3,
                    depth: k,
                }],
            );
            let fwd = lane_distances(&engine, Direction::Forward, 0, 8);
            let bwd = lane_distances(&engine, Direction::Backward, 0, 8);
            for v in g.vertices() {
                assert_eq!(fwd[v as usize], flat.raw_dist_from_s(v), "k={k} v={v} fwd");
                assert_eq!(bwd[v as usize], flat.raw_dist_to_t(v), "k={k} v={v} bwd");
            }
        }
    }

    /// The avoided endpoint may be discovered but never expanded: vertices
    /// only reachable through it stay undiscovered for that lane, while a
    /// lane with a different target sails past in the same run.
    #[test]
    fn avoid_vertex_blocks_expansion_per_lane() {
        // 0 → 1 → 2 → 3 → 4: vertex 4 is reachable only through 3.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut engine = MsBfsEngine::new();
        engine.run(
            &g,
            &[
                MsBfsLane {
                    source: 0,
                    target: 3,
                    depth: 8,
                },
                MsBfsLane {
                    source: 0,
                    target: 1,
                    depth: 8,
                },
            ],
        );
        let avoid3 = lane_distances(&engine, Direction::Forward, 0, 5);
        let avoid1 = lane_distances(&engine, Direction::Forward, 1, 5);
        assert_eq!(avoid3[3], 3, "the avoided vertex itself is discovered");
        assert_eq!(avoid3[4], INF_DIST, "but never expanded from");
        assert_eq!(avoid1[1], 1);
        assert_eq!(avoid1[2], INF_DIST, "lane 1 is cut at vertex 1 instead");
        assert_eq!(avoid1[0], 0);
        // Backward side of lane 0 (start 3, avoid 0): half = 4 free levels
        // walk in-edges 3 ← 2 ← 1 ← 0.
        let bwd = lane_distances(&engine, Direction::Backward, 0, 5);
        assert_eq!(bwd[3], 0);
        assert_eq!(bwd[2], 1);
    }

    /// Per-lane hop budgets pause and retire lanes independently: on a
    /// path graph the filtered distances admit exactly the path when the
    /// budget covers it.
    #[test]
    fn per_lane_depth_budgets_are_respected() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut engine = MsBfsEngine::new();
        let lanes = [
            MsBfsLane {
                source: 0,
                target: 3,
                depth: 2, // too short: the 0→3 path needs 3 hops
            },
            MsBfsLane {
                source: 0,
                target: 3,
                depth: 3, // exact
            },
            MsBfsLane {
                source: 0,
                target: 5,
                depth: 5, // exact full path
            },
        ];
        engine.run(&g, &lanes);
        for (lane, spec) in lanes.iter().enumerate() {
            let mut fd = FlatDistances::new();
            fd.begin_load(6, spec.source, spec.target, spec.depth);
            engine.for_each_lane_distance(Direction::Forward, lane, |v, d| fd.push_forward(v, d));
            engine.for_each_lane_distance(Direction::Backward, lane, |v, d| fd.push_backward(v, d));
            let mut reference = FlatDistances::new();
            reference.compute(
                &g,
                spec.source,
                spec.target,
                spec.depth,
                DistanceStrategy::Single,
            );
            assert_eq!(fd.is_feasible(), reference.is_feasible(), "lane {lane}");
            for v in g.vertices() {
                assert_eq!(
                    fd.dist_from_s(v),
                    reference.dist_from_s(v),
                    "lane {lane} v {v}"
                );
                assert_eq!(fd.dist_to_t(v), reference.dist_to_t(v), "lane {lane} v {v}");
            }
        }
    }

    /// All three frontier modes produce identical per-lane distances; the
    /// forced modes actually exercise their expansion kind.
    #[test]
    fn frontier_modes_agree_and_are_observable() {
        let g = crate::generators::gnm_random(60, 600, 42);
        let lanes: Vec<MsBfsLane> = (0..32)
            .map(|i| MsBfsLane {
                source: i as VertexId,
                target: (i + 7) as VertexId % 60,
                depth: 1 + (i % 6) as u32,
            })
            .collect();
        let mut reference: Option<Vec<Vec<u32>>> = None;
        for mode in [
            FrontierMode::TopDownOnly,
            FrontierMode::BottomUpOnly,
            FrontierMode::DirectionOptimizing,
        ] {
            let mut engine = MsBfsEngine::new();
            engine.set_mode(mode);
            assert_eq!(engine.mode(), mode);
            engine.run(&g, &lanes);
            let dists: Vec<Vec<u32>> = (0..lanes.len())
                .flat_map(|lane| {
                    [
                        lane_distances(&engine, Direction::Forward, lane, 60),
                        lane_distances(&engine, Direction::Backward, lane, 60),
                    ]
                })
                .collect();
            match &reference {
                None => reference = Some(dists),
                Some(r) => assert_eq!(r, &dists, "{mode:?} diverged"),
            }
            let fwd = engine.side_stats(Direction::Forward);
            let bwd = engine.side_stats(Direction::Backward);
            match mode {
                FrontierMode::TopDownOnly => {
                    assert_eq!(fwd.bottom_up_levels + bwd.bottom_up_levels, 0);
                    assert!(fwd.top_down_edge_scans > 0);
                }
                FrontierMode::BottomUpOnly => {
                    assert_eq!(fwd.top_down_levels + bwd.top_down_levels, 0);
                    assert!(fwd.bottom_up_edge_scans > 0);
                }
                FrontierMode::DirectionOptimizing => {
                    assert_eq!(
                        fwd.total_edge_scans(),
                        fwd.top_down_edge_scans + fwd.bottom_up_edge_scans
                    );
                }
            }
            let mut acc = SearchSpaceStats::default();
            fwd.accumulate_into(&mut acc, Direction::Forward);
            bwd.accumulate_into(&mut acc, Direction::Backward);
            assert_eq!(
                acc.total_edge_scans(),
                fwd.total_edge_scans() + bwd.total_edge_scans()
            );
        }
    }

    /// Reuse across runs: a big run followed by a small one must not leak
    /// bits, records or stats between them.
    #[test]
    fn engine_reuse_is_clean() {
        let g = figure1();
        let mut engine = MsBfsEngine::new();
        let all_lanes: Vec<MsBfsLane> = (0..MAX_LANES)
            .map(|i| MsBfsLane {
                source: (i % 8) as VertexId,
                target: ((i % 8) + 1) as VertexId % 8,
                depth: 8,
            })
            .collect();
        engine.run(&g, &all_lanes);
        assert_eq!(engine.lane_count(), MAX_LANES);
        let big_retained = engine.retained_bytes();

        let mut fresh = MsBfsEngine::new();
        let small = [MsBfsLane {
            source: 0,
            target: 3,
            depth: 2,
        }];
        engine.run(&g, &small);
        fresh.run(&g, &small);
        assert_eq!(engine.lane_count(), 1);
        for dir in [Direction::Forward, Direction::Backward] {
            assert_eq!(
                lane_distances(&engine, dir, 0, 8),
                lane_distances(&fresh, dir, 0, 8),
                "reused engine must match a fresh one ({dir:?})"
            );
        }
        assert!(engine.retained_bytes() >= big_retained.min(1));
    }

    /// A budget abort at any level boundary must restore the all-zero bit
    /// invariant (the `begin` debug_assert would fire otherwise) and leave
    /// the engine bit-identical to a fresh one on the next run.
    #[test]
    fn budget_abort_restores_invariants_and_reuse() {
        let g = crate::generators::gnm_random(60, 600, 42);
        let lanes: Vec<MsBfsLane> = (0..16)
            .map(|i| MsBfsLane {
                source: i as VertexId,
                target: (i + 7) as VertexId % 60,
                depth: 1 + (i % 6) as u32,
            })
            .collect();
        let mut engine = MsBfsEngine::new();
        let mut aborted = 0;
        for limit in (0..2000u64).step_by(37) {
            let outcome = engine.run_budgeted(&g, &lanes, &QueryBudget::with_work_limit(limit));
            if outcome.is_err() {
                assert_eq!(outcome, Err(BudgetExhausted::Work));
                assert_eq!(engine.lane_count(), 0, "partial results are discarded");
                aborted += 1;
            }
            // Whether aborted or not, the next full run must match a fresh
            // engine exactly.
            engine.run(&g, &lanes);
            let mut fresh = MsBfsEngine::new();
            fresh.run(&g, &lanes);
            for lane in 0..lanes.len() {
                for dir in [Direction::Forward, Direction::Backward] {
                    assert_eq!(
                        lane_distances(&engine, dir, lane, 60),
                        lane_distances(&fresh, dir, lane, 60),
                        "limit={limit} lane={lane} {dir:?}"
                    );
                }
            }
        }
        assert!(aborted > 0, "some ceilings must actually trip");
    }

    #[test]
    #[should_panic(expected = "1..=64 lanes")]
    fn too_many_lanes_panic() {
        let g = figure1();
        let lanes = vec![
            MsBfsLane {
                source: 0,
                target: 1,
                depth: 2
            };
            65
        ];
        MsBfsEngine::new().run(&g, &lanes);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn source_equals_target_panics() {
        let g = figure1();
        MsBfsEngine::new().run(
            &g,
            &[MsBfsLane {
                source: 2,
                target: 2,
                depth: 3,
            }],
        );
    }
}
