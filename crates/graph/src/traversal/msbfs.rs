//! Bit-parallel multi-source hop-bounded bidirectional BFS (MS-BFS) with
//! direction-optimizing traversal over multi-word lane blocks.
//!
//! The EVE Phase 1 runs one hop-bounded bidirectional search per query. When
//! a batch contains many queries, most of that traversal work is repeated:
//! queries share endpoint pairs, and even unrelated queries walk the same
//! dense core of the graph. [`MsBfsEngine`] amortises that cost in the style
//! of *MS-BFS* (Then et al., VLDB 2015): concurrent **lanes** — one per
//! distinct `(s, t)` endpoint pair — share a single pass over the CSR, with
//! one [`LaneBlock`] per vertex whose bit *i* says "lane *i* has reached this
//! vertex". Setting bit *i* for the first time at level *d* means
//! `dist_i(v) = d`; per-level discovery records make those distances
//! recoverable per lane afterwards.
//!
//! A lane block is a fixed-size array of `u64` words: `[u64; 1]`
//! ([`Lanes64`]) carries the classic 64 lanes, `[u64; 2]` ([`Lanes128`]) and
//! `[u64; 4]` ([`Lanes256`]) widen one traversal to 128 / 256 pairs. The
//! word-wise `or`/`and`/`not`/`any`/`count_ones` operations are written as
//! straight-line array loops with a compile-time trip count, which the
//! compiler unrolls and autovectorizes on stable Rust (a `[u64; 4]` OR is
//! one AVX2 operation) — no `std::simd`, no `unsafe`. Wider blocks cost
//! proportionally more per touched vertex but divide the number of sweeps:
//! a 256-pair batch pays one CSR traversal instead of four.
//!
//! Three properties of the per-query engine are folded into the word
//! operations, so cohort-shared answers stay bit-identical:
//!
//! * **Bidirectional scheduling.** A full-depth one-directional BFS
//!   saturates the graph (`O(d_avg^k)` vs the bidirectional
//!   `O(d_avg^{k/2})` meet-in-the-middle), which no amount of bit-
//!   parallelism pays back. Each lane therefore follows exactly the
//!   balanced-bidirectional schedule of the per-query
//!   [`FlatDistances`](crate::traversal::FlatDistances) engine: the forward
//!   side expands freely to `⌈k/2⌉`, the backward side to `⌊k/2⌋`, then
//!   each side finishes **restricted** — only vertices the other side has
//!   already discovered may be newly discovered. Lanes with different `k`
//!   pause at different levels; a per-vertex *paused* block parks a lane's
//!   frontier at its half-depth and the restricted phase resumes all lanes
//!   level-synchronously (lane *i*'s restricted level *c* means distance
//!   `half_i + c`).
//! * **Per-lane avoid vertices.** EVE's forward distances `Δ(s, v)` never
//!   route *through* `t` (and the backward ones never through `s`): paths
//!   revisiting an endpoint cannot be simple. A per-vertex forbid block
//!   masks a lane's bit out of every expansion *from* its avoided endpoint
//!   while still allowing that vertex to be discovered. This is also why
//!   lanes are keyed by the `(s, t)` *pair* rather than the bare source:
//!   two queries from one source with different targets need different
//!   avoid vertices, and merging them would change distances (and answers)
//!   whenever the only shortest route to some vertex passes through one of
//!   the targets.
//! * **Per-lane hop budgets.** Lane *i* stops discovering at its own depth
//!   budget; per-level active masks retire exhausted lanes, so recorded
//!   distances are exactly the hop-bounded set a per-query run produces.
//!
//! Within every phase, each level is expanded either **top-down** (scan the
//! frontier's adjacency and OR its block into the neighbours) or
//! **bottom-up** (scan still-undiscovered vertices and gather the frontier
//! blocks of their reverse neighbours, with early exit once every
//! still-possible lane has been found) in the style of Beamer's
//! direction-optimizing BFS. Which one runs is decided per level by the
//! engine's [`FrontierPolicy`]: the default α/β **hysteresis** enters
//! bottom-up when the frontier's incident edges exceed `edges / α` and only
//! returns to top-down once the frontier shrinks below `vertices / β`
//! (while bottom-up is active the per-level degree scan is skipped
//! entirely); the legacy [`FrontierPolicy::Fixed`] threshold is retained
//! for differential tests. [`MsBfsStats`] counts both kinds of edge scan
//! separately so the switching stays observable, and
//! [`FrontierPolicy::seeded_from_scan_split`] turns those observed counters
//! back into tuned α/β thresholds.

use crate::budget::{BudgetExhausted, QueryBudget};
use crate::csr::{DiGraph, Direction, VertexId};
use crate::traversal::SearchSpaceStats;

/// Lanes carried by a single `u64` word — the capacity of the default
/// [`Lanes64`] block. Wider blocks hold `WORDS × 64` lanes
/// ([`LaneBlock::LANES`]).
pub const MAX_LANES: usize = 64;

/// A fixed-size block of `u64` lane words — the unit of bit-parallelism of
/// [`MsBfsEngine`]. Bit *i* (word `i / 64`, bit `i % 64`) belongs to lane
/// *i*. Implemented for every `[u64; W]` via const generics; the supported
/// engine widths are [`Lanes64`], [`Lanes128`] and [`Lanes256`].
///
/// Every operation is a straight-line loop over the `W` words with a
/// compile-time trip count, which the compiler unrolls and autovectorizes —
/// the abstraction adds no branches to the traversal inner loops.
pub trait LaneBlock: Copy + PartialEq + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Number of `u64` words per block.
    const WORDS: usize;
    /// Number of lanes the block carries (`WORDS × 64`).
    const LANES: usize = Self::WORDS * 64;

    /// The all-zero block.
    fn zero() -> Self;
    /// `true` if any bit is set.
    fn any(&self) -> bool;
    /// Whether bit `lane` is set.
    fn test(&self, lane: usize) -> bool;
    /// Sets bit `lane`.
    fn set(&mut self, lane: usize);
    /// Word-wise `self & other`.
    fn and(self, other: Self) -> Self;
    /// Word-wise `self & !other`.
    fn and_not(self, other: Self) -> Self;
    /// Word-wise `self |= other`.
    fn or_assign(&mut self, other: Self);
    /// Total set bits across all words.
    fn count_ones(&self) -> u32;
    /// `self & other == other` — "every bit of `other` is already in
    /// `self`", the bottom-up early-exit test.
    fn covers(&self, other: Self) -> bool;
    /// Word `i` of the block (lanes `64·i .. 64·i + 64`).
    fn word(&self, i: usize) -> u64;
}

impl<const W: usize> LaneBlock for [u64; W] {
    const WORDS: usize = W;

    #[inline(always)]
    fn zero() -> Self {
        [0u64; W]
    }

    #[inline(always)]
    fn any(&self) -> bool {
        let mut acc = 0u64;
        for w in self {
            acc |= w;
        }
        acc != 0
    }

    #[inline(always)]
    fn test(&self, lane: usize) -> bool {
        self[lane / 64] & (1u64 << (lane % 64)) != 0
    }

    #[inline(always)]
    fn set(&mut self, lane: usize) {
        self[lane / 64] |= 1u64 << (lane % 64);
    }

    #[inline(always)]
    fn and(mut self, other: Self) -> Self {
        for (a, b) in self.iter_mut().zip(&other) {
            *a &= b;
        }
        self
    }

    #[inline(always)]
    fn and_not(mut self, other: Self) -> Self {
        for (a, b) in self.iter_mut().zip(&other) {
            *a &= !b;
        }
        self
    }

    #[inline(always)]
    fn or_assign(&mut self, other: Self) {
        for (a, b) in self.iter_mut().zip(&other) {
            *a |= b;
        }
    }

    #[inline(always)]
    fn count_ones(&self) -> u32 {
        let mut total = 0u32;
        for w in self {
            total += w.count_ones();
        }
        total
    }

    #[inline(always)]
    fn covers(&self, other: Self) -> bool {
        let mut missing = 0u64;
        for (a, b) in self.iter().zip(&other) {
            missing |= b & !a;
        }
        missing == 0
    }

    #[inline(always)]
    fn word(&self, i: usize) -> u64 {
        self[i]
    }
}

/// Single-word lane block: 64 lanes, the default engine width.
pub type Lanes64 = [u64; 1];
/// Two-word lane block: 128 lanes per traversal.
pub type Lanes128 = [u64; 2];
/// Four-word lane block: 256 lanes per traversal (one AVX2 op per
/// word-wise operation when vectorized).
pub type Lanes256 = [u64; 4];

/// One BFS lane: a distinct `(source, target)` endpoint pair and its hop
/// budget. The forward side starts at `source` avoiding `target`; the
/// backward side starts at `target` avoiding `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsBfsLane {
    /// Query source `s` (forward distance 0).
    pub source: VertexId,
    /// Query target `t` (backward distance 0; must differ from `source`).
    pub target: VertexId,
    /// Hop budget: the lane records forward + backward distances whose
    /// filtered sum can reach `depth` (0 records only the endpoints).
    pub depth: u32,
}

impl MsBfsLane {
    /// Free forward levels of the balanced bidirectional schedule, `⌈k/2⌉`.
    #[inline]
    fn half_fwd(&self) -> u32 {
        self.depth.div_ceil(2)
    }

    /// Free backward levels, `⌊k/2⌋`.
    #[inline]
    fn half_bwd(&self) -> u32 {
        self.depth / 2
    }
}

/// Per-level expansion policy of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontierMode {
    /// Choose top-down or bottom-up per level via the engine's
    /// [`FrontierPolicy`] (the default, and what production cohorts use).
    #[default]
    DirectionOptimizing,
    /// Always relax frontier adjacency (classic BFS); the baseline the
    /// `batch_phase1` benchmark compares against.
    TopDownOnly,
    /// Always gather from reverse adjacency (for tests and worst-case
    /// measurements; correct but wasteful on sparse frontiers).
    BottomUpOnly,
}

/// How [`FrontierMode::DirectionOptimizing`] decides top-down vs bottom-up
/// per level. Answers never depend on the policy — only the work profile
/// does — so differential tests sweep policies freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontierPolicy {
    /// Beamer-style α/β hysteresis with direction state per traversal
    /// phase: a top-down level switches to bottom-up when the frontier's
    /// incident edges exceed `edge_count / alpha`; bottom-up persists —
    /// skipping the per-level degree scan entirely — until the frontier
    /// shrinks below `vertex_count / beta` vertices. The defaults
    /// (α = [`FrontierPolicy::DEFAULT_ALPHA`],
    /// β = [`FrontierPolicy::DEFAULT_BETA`]) keep the deliberately high
    /// entry bar of the old fixed threshold — a multi-lane bottom-up gather
    /// only early-exits once *every* still-possible lane is found, so
    /// bottom-up pays later than in single-source BFS — while the β exit
    /// lets a collapsing frontier return to top-down instead of re-scanning
    /// all vertices level after level.
    Hysteresis {
        /// Bottom-up entry: switch when `frontier_edges × alpha > edges`.
        alpha: u32,
        /// Top-down return: switch back when
        /// `frontier_vertices × beta < vertices`.
        beta: u32,
    },
    /// The pre-hysteresis fixed threshold, evaluated from scratch every
    /// level: bottom-up iff `frontier_edges × denominator ≥ edges`.
    /// Retained for differential tests and A/B measurements.
    Fixed {
        /// The fixed density denominator (the legacy engine used 2).
        denominator: u32,
    },
}

impl FrontierPolicy {
    /// Default bottom-up entry threshold (`frontier_edges > edges / 2`).
    pub const DEFAULT_ALPHA: u32 = 2;
    /// Default top-down return threshold (`frontier < vertices / 8`).
    pub const DEFAULT_BETA: u32 = 8;

    /// Derives hysteresis thresholds from an observed top-down/bottom-up
    /// edge-scan split — e.g. the `SharedPhase1Stats` traversal counters of
    /// a prior representative batch. Cheap observed bottom-up gathers
    /// (early exits firing, `bottom_up ≪ top_down`) justify entering
    /// bottom-up earlier (lower α); expensive gathers push the switch
    /// later. With no bottom-up evidence the defaults are kept.
    pub fn seeded_from_scan_split(top_down_edge_scans: usize, bottom_up_edge_scans: usize) -> Self {
        if bottom_up_edge_scans == 0 {
            return FrontierPolicy::default();
        }
        let alpha = ((2 * bottom_up_edge_scans) / top_down_edge_scans.max(1)).clamp(1, 16) as u32;
        FrontierPolicy::Hysteresis {
            alpha,
            beta: (alpha * 4).clamp(4, 64),
        }
    }
}

impl Default for FrontierPolicy {
    fn default() -> Self {
        FrontierPolicy::Hysteresis {
            alpha: FrontierPolicy::DEFAULT_ALPHA,
            beta: FrontierPolicy::DEFAULT_BETA,
        }
    }
}

/// Work counters of one side of an [`MsBfsEngine::run`], split by expansion
/// direction so the direction-optimizing switch is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsBfsStats {
    /// Adjacency entries scanned by top-down levels (frontier relaxations).
    pub top_down_edge_scans: usize,
    /// Reverse-adjacency entries probed by bottom-up levels (including
    /// probes cut short by the early exit).
    pub bottom_up_edge_scans: usize,
    /// Levels expanded top-down.
    pub top_down_levels: usize,
    /// Levels expanded bottom-up.
    pub bottom_up_levels: usize,
}

impl MsBfsStats {
    /// Total edges scanned in either direction.
    pub fn total_edge_scans(&self) -> usize {
        self.top_down_edge_scans + self.bottom_up_edge_scans
    }

    /// Folds this side's counters into a [`SearchSpaceStats`]: top-down
    /// scans land on the side given by `dir` (forward side → forward
    /// scans), bottom-up scans are accounted separately.
    pub fn accumulate_into(&self, stats: &mut SearchSpaceStats, dir: Direction) {
        match dir {
            Direction::Forward => stats.forward_edge_scans += self.top_down_edge_scans,
            Direction::Backward => stats.backward_edge_scans += self.top_down_edge_scans,
        }
        stats.bottom_up_edge_scans += self.bottom_up_edge_scans;
    }
}

/// One traversal side (forward from the sources or backward from the
/// targets) with its lane-block arrays and discovery records.
#[derive(Debug, Clone)]
struct Side<B: LaneBlock> {
    /// Bit *i* set ⇒ lane *i* has discovered this vertex on this side.
    seen: Vec<B>,
    /// Bits discovered exactly at the current level.
    frontier_bits: Vec<B>,
    /// Bits being discovered at the level under construction.
    next_bits: Vec<B>,
    /// Bit *i* set ⇒ this vertex is lane *i*'s avoided endpoint on this
    /// side (discoverable, never expanded from).
    forbid: Vec<B>,
    /// Frontier bits parked at each lane's half-depth, waiting for the
    /// restricted phase.
    paused_bits: Vec<B>,
    /// Vertices with a non-zero `frontier_bits` block.
    frontier: Vec<VertexId>,
    /// Vertices with a non-zero `next_bits` block.
    next: Vec<VertexId>,
    /// Vertices with a non-zero `paused_bits` block.
    paused: Vec<VertexId>,
    /// `(vertex, bits first set at that level)` for the free phase,
    /// grouped by level: level `d` distances are `d`.
    records_free: Vec<(VertexId, B)>,
    offsets_free: Vec<usize>,
    /// Restricted-phase records, grouped by resumed level: lane *i* bits at
    /// level `c` mean distance `half_i + c`.
    records_restricted: Vec<(VertexId, B)>,
    offsets_restricted: Vec<usize>,
    /// Per-lane CSR over both record lists, built once per run by
    /// [`Side::index_lanes`]: lane *i*'s `(vertex, distance)` entries, in
    /// ascending distance order, are
    /// `lane_entries[lane_starts[i]..lane_starts[i + 1]]`. Reading one
    /// lane's distances then costs its own entry count — not one scan of
    /// the whole cohort's records per member, which grows with lane width.
    lane_starts: Vec<usize>,
    lane_entries: Vec<(VertexId, u32)>,
    /// Fill cursors of `index_lanes`, retained to avoid per-run allocation.
    lane_cursor: Vec<usize>,
    /// Hysteresis state of [`FrontierPolicy::Hysteresis`]: whether the
    /// previous level of the current phase ran bottom-up. Reset at every
    /// phase start (`begin` / `resume_from_paused`).
    bottom_up_active: bool,
    stats: MsBfsStats,
}

impl<B: LaneBlock> Default for Side<B> {
    fn default() -> Self {
        Side {
            seen: Vec::new(),
            frontier_bits: Vec::new(),
            next_bits: Vec::new(),
            forbid: Vec::new(),
            paused_bits: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            paused: Vec::new(),
            records_free: Vec::new(),
            offsets_free: Vec::new(),
            records_restricted: Vec::new(),
            offsets_restricted: Vec::new(),
            lane_starts: Vec::new(),
            lane_entries: Vec::new(),
            lane_cursor: Vec::new(),
            bottom_up_active: false,
            stats: MsBfsStats::default(),
        }
    }
}

impl<B: LaneBlock> Side<B> {
    fn begin(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, B::zero());
            self.frontier_bits.resize(n, B::zero());
            self.next_bits.resize(n, B::zero());
            self.forbid.resize(n, B::zero());
            self.paused_bits.resize(n, B::zero());
        }
        debug_assert!(
            self.seen.iter().all(|w| !w.any())
                && self.forbid.iter().all(|w| !w.any())
                && self.frontier_bits.iter().all(|w| !w.any())
                && self.paused_bits.iter().all(|w| !w.any()),
            "bit arrays must be all-zero between runs"
        );
        self.records_free.clear();
        self.offsets_free.clear();
        self.records_restricted.clear();
        self.offsets_restricted.clear();
        self.lane_starts.clear();
        self.lane_entries.clear();
        self.frontier.clear();
        self.next.clear();
        self.paused.clear();
        self.bottom_up_active = false;
        self.stats = MsBfsStats::default();
    }

    /// Seeds lane `i` at `start` avoiding `avoid`.
    fn seed(&mut self, i: usize, start: VertexId, avoid: VertexId) {
        if !self.frontier_bits[start as usize].any() {
            self.frontier.push(start);
        }
        self.frontier_bits[start as usize].set(i);
        self.seen[start as usize].set(i);
        self.forbid[avoid as usize].set(i);
    }

    /// Records the current frontier as one level of `records_free`.
    fn record_free_level(&mut self) {
        for &v in &self.frontier {
            self.records_free.push((v, self.frontier_bits[v as usize]));
        }
        self.offsets_free.push(self.records_free.len());
    }

    /// Parks the frontier bits of `pause_mask` lanes for the restricted
    /// phase (their free budget ends at the current level).
    fn pause(&mut self, pause_mask: B) {
        if !pause_mask.any() {
            return;
        }
        for &v in &self.frontier {
            let bits = self.frontier_bits[v as usize].and(pause_mask);
            if bits.any() {
                if !self.paused_bits[v as usize].any() {
                    self.paused.push(v);
                }
                self.paused_bits[v as usize].or_assign(bits);
            }
        }
    }

    /// Promotes `next` to the frontier, leaving the old arrays all-zero.
    fn advance(&mut self) {
        for &u in &self.frontier {
            self.frontier_bits[u as usize] = B::zero();
        }
        std::mem::swap(&mut self.frontier_bits, &mut self.next_bits);
        std::mem::swap(&mut self.frontier, &mut self.next);
        self.next.clear();
    }

    /// Replaces the frontier with the paused set (restricted-phase start).
    fn resume_from_paused(&mut self) {
        for &u in &self.frontier {
            self.frontier_bits[u as usize] = B::zero();
        }
        self.frontier.clear();
        std::mem::swap(&mut self.frontier_bits, &mut self.paused_bits);
        std::mem::swap(&mut self.frontier, &mut self.paused);
        // The restricted phase starts a fresh direction decision.
        self.bottom_up_active = false;
    }

    /// Adjacency entries incident to the current frontier in `dir` — the
    /// density signal of the direction switch.
    fn frontier_edges(&self, g: &DiGraph, dir: Direction) -> usize {
        self.frontier
            .iter()
            .map(|&u| g.neighbors(u, dir).len())
            .sum()
    }

    /// Expands one level. `level_mask` holds the lanes still in budget;
    /// `restrict` is the other side's seen array during the restricted
    /// phase (a lane may then only discover vertices the other side has
    /// seen). Returns `true` if anything was discovered.
    fn step(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        level_mask: B,
        restrict: Option<&[B]>,
        mode: FrontierMode,
        policy: FrontierPolicy,
    ) -> bool {
        let bottom_up = match mode {
            FrontierMode::TopDownOnly => false,
            FrontierMode::BottomUpOnly => true,
            FrontierMode::DirectionOptimizing => match policy {
                FrontierPolicy::Fixed { denominator } => {
                    self.frontier_edges(g, dir) * denominator as usize >= g.edge_count().max(1)
                }
                FrontierPolicy::Hysteresis { alpha, beta } => {
                    if self.bottom_up_active {
                        // β exit: stay bottom-up until the frontier thins
                        // out; only its vertex count is consulted, so the
                        // per-level degree scan is skipped entirely.
                        self.frontier.len() * beta as usize >= g.vertex_count().max(1)
                    } else {
                        // α entry: a dense frontier justifies gathering.
                        self.frontier_edges(g, dir) * alpha as usize > g.edge_count().max(1)
                    }
                }
            },
        };
        self.bottom_up_active = bottom_up;
        if bottom_up {
            self.step_bottom_up(g, dir, level_mask, restrict);
        } else {
            self.step_top_down(g, dir, level_mask, restrict);
        }
        !self.next.is_empty()
    }

    /// Classic frontier relaxation: scan the adjacency of every frontier
    /// vertex and OR its (forbid-masked) block into each neighbour.
    fn step_top_down(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        level_mask: B,
        restrict: Option<&[B]>,
    ) {
        self.stats.top_down_levels += 1;
        let frontier = std::mem::take(&mut self.frontier);
        for &u in &frontier {
            let mask = self.frontier_bits[u as usize]
                .and_not(self.forbid[u as usize])
                .and(level_mask);
            if !mask.any() {
                continue;
            }
            for &v in g.neighbors(u, dir) {
                self.stats.top_down_edge_scans += 1;
                let mut new = mask.and_not(self.seen[v as usize]);
                if let Some(other_seen) = restrict {
                    new = new.and(other_seen[v as usize]);
                }
                if new.any() {
                    if !self.next_bits[v as usize].any() {
                        self.next.push(v);
                    }
                    self.next_bits[v as usize].or_assign(new);
                    self.seen[v as usize].or_assign(new);
                }
            }
        }
        self.frontier = frontier;
    }

    /// Beamer-style bottom-up level: every vertex that some active lane
    /// could still discover gathers the frontier blocks of its reverse
    /// neighbours, stopping early once all still-possible lanes are found.
    fn step_bottom_up(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        level_mask: B,
        restrict: Option<&[B]>,
    ) {
        self.stats.bottom_up_levels += 1;
        let gather_dir = dir.flipped();
        for v in 0..g.vertex_count() as VertexId {
            let mut possible = level_mask.and_not(self.seen[v as usize]);
            if let Some(other_seen) = restrict {
                possible = possible.and(other_seen[v as usize]);
            }
            if !possible.any() {
                continue;
            }
            let mut gathered = B::zero();
            for &u in g.neighbors(v, gather_dir) {
                self.stats.bottom_up_edge_scans += 1;
                gathered.or_assign(self.frontier_bits[u as usize].and_not(self.forbid[u as usize]));
                if gathered.covers(possible) {
                    break;
                }
            }
            let new = gathered.and(possible);
            if new.any() {
                self.next.push(v);
                self.next_bits[v as usize] = new;
                self.seen[v as usize].or_assign(new);
            }
        }
    }

    /// Restores the all-zero invariant after a run. Every vertex with a
    /// `seen` bit appears in a record, and the `frontier` / `paused` lists
    /// track exactly the vertices whose `frontier_bits` / `paused_bits`
    /// blocks are non-zero (`seed`, the step functions, `advance`, `pause`
    /// and `resume_from_paused` all maintain this, and the budget poll
    /// aborts only at level boundaries where it holds) — so one store per
    /// recorded vertex plus the two short lists suffice, instead of three
    /// block stores per record.
    fn cleanup(&mut self, lanes: &[MsBfsLane], avoid_of: impl Fn(&MsBfsLane) -> VertexId) {
        for &(v, _) in self.records_free.iter().chain(&self.records_restricted) {
            self.seen[v as usize] = B::zero();
        }
        for &v in &self.frontier {
            self.frontier_bits[v as usize] = B::zero();
        }
        for &v in &self.paused {
            self.paused_bits[v as usize] = B::zero();
        }
        for lane in lanes {
            self.forbid[avoid_of(lane) as usize] = B::zero();
        }
        self.frontier.clear();
        self.paused.clear();
    }

    /// Builds the per-lane distance index: one pass over the level-grouped
    /// records fans each block's set bits out to the owning lanes (counting
    /// pass, prefix sum, fill pass). Group order is ascending distance per
    /// lane — free levels stop at the lane's half, restricted level `c`
    /// means `half + c + 1` — so each lane's entry run is distance-sorted
    /// and a depth-truncated read can stop at the first too-deep entry.
    fn index_lanes(&mut self, lane_count: usize, halves: &[u32]) {
        self.lane_starts.clear();
        self.lane_starts.resize(lane_count + 1, 0);
        for &(_, bits) in self.records_free.iter().chain(&self.records_restricted) {
            for w in 0..B::WORDS {
                let mut word = bits.word(w);
                while word != 0 {
                    let lane = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.lane_starts[lane + 1] += 1;
                }
            }
        }
        for i in 1..=lane_count {
            self.lane_starts[i] += self.lane_starts[i - 1];
        }
        self.lane_cursor.clear();
        self.lane_cursor
            .extend_from_slice(&self.lane_starts[..lane_count]);
        self.lane_entries.clear();
        self.lane_entries
            .resize(self.lane_starts[lane_count], (0, 0));
        let mut start = 0usize;
        for (d, &end) in self.offsets_free.iter().enumerate() {
            for &(v, bits) in &self.records_free[start..end] {
                for w in 0..B::WORDS {
                    let mut word = bits.word(w);
                    while word != 0 {
                        let lane = w * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let slot = self.lane_cursor[lane];
                        self.lane_entries[slot] = (v, d as u32);
                        self.lane_cursor[lane] = slot + 1;
                    }
                }
            }
            start = end;
        }
        let mut start = 0usize;
        for (c, &end) in self.offsets_restricted.iter().enumerate() {
            for &(v, bits) in &self.records_restricted[start..end] {
                for w in 0..B::WORDS {
                    let mut word = bits.word(w);
                    while word != 0 {
                        let lane = w * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let slot = self.lane_cursor[lane];
                        self.lane_entries[slot] = (v, halves[lane] + c as u32 + 1);
                        self.lane_cursor[lane] = slot + 1;
                    }
                }
            }
            start = end;
        }
    }

    fn retained_bytes(&self) -> usize {
        let blocks = self.seen.capacity()
            + self.frontier_bits.capacity()
            + self.next_bits.capacity()
            + self.forbid.capacity()
            + self.paused_bits.capacity();
        blocks * std::mem::size_of::<B>()
            + (self.frontier.capacity() + self.next.capacity() + self.paused.capacity())
                * std::mem::size_of::<VertexId>()
            + (self.records_free.capacity() + self.records_restricted.capacity())
                * std::mem::size_of::<(VertexId, B)>()
            + (self.offsets_free.capacity() + self.offsets_restricted.capacity())
                * std::mem::size_of::<usize>()
            + (self.lane_starts.capacity() + self.lane_cursor.capacity())
                * std::mem::size_of::<usize>()
            + self.lane_entries.capacity() * std::mem::size_of::<(VertexId, u32)>()
    }
}

/// Reusable bit-parallel multi-source bidirectional BFS engine (see the
/// module docs), generic over its lane-block width `B`. The default
/// [`Lanes64`] engine carries 64 lanes; [`Lanes128`] / [`Lanes256`]
/// engines carry 128 / 256 (cohort planners pick the narrowest block that
/// fits a cohort, so small cohorts never pay wide-word overhead).
///
/// All buffers are retained across runs; between runs the graph-sized bit
/// arrays are kept all-zero (reset touches only the vertices the previous
/// run discovered), so a warmed engine performs no per-run allocation and
/// no O(n) clearing.
#[derive(Debug, Clone)]
pub struct MsBfsEngine<B: LaneBlock = Lanes64> {
    fwd: Side<B>,
    bwd: Side<B>,
    /// `half_fwd` per lane, for restricted-level distance reconstruction.
    halves_fwd: Vec<u32>,
    /// `half_bwd` per lane.
    halves_bwd: Vec<u32>,
    mode: FrontierMode,
    policy: FrontierPolicy,
    lane_count: usize,
}

impl<B: LaneBlock> Default for MsBfsEngine<B> {
    fn default() -> Self {
        MsBfsEngine {
            fwd: Side::default(),
            bwd: Side::default(),
            halves_fwd: Vec::new(),
            halves_bwd: Vec::new(),
            mode: FrontierMode::default(),
            policy: FrontierPolicy::default(),
            lane_count: 0,
        }
    }
}

impl<B: LaneBlock> MsBfsEngine<B> {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        MsBfsEngine::default()
    }

    /// Maximum lanes one run of this engine carries ([`LaneBlock::LANES`]).
    pub fn max_lanes() -> usize {
        B::LANES
    }

    /// Sets the per-level expansion policy for subsequent runs.
    pub fn set_mode(&mut self, mode: FrontierMode) {
        self.mode = mode;
    }

    /// The current expansion policy.
    pub fn mode(&self) -> FrontierMode {
        self.mode
    }

    /// Sets the direction-switch policy used by
    /// [`FrontierMode::DirectionOptimizing`] for subsequent runs.
    pub fn set_policy(&mut self, policy: FrontierPolicy) {
        self.policy = policy;
    }

    /// The current direction-switch policy.
    pub fn policy(&self) -> FrontierPolicy {
        self.policy
    }

    /// Runs one shared bidirectional hop-bounded search over `lanes`,
    /// following the per-query balanced-bidirectional schedule lane by
    /// lane: forward free to `⌈k/2⌉` (pausing each lane's frontier at its
    /// own half-depth), backward free to `⌊k/2⌋`, then each side finishes
    /// restricted to the other side's discovered region. Backward levels
    /// walk the in-adjacency, so the reversed CSR is never materialised.
    ///
    /// Results stay readable (via [`MsBfsEngine::for_each_lane_distance`])
    /// until the next `run`.
    ///
    /// # Panics
    /// Panics if `lanes` is empty or longer than [`LaneBlock::LANES`], or
    /// if any lane has `source == target` or an endpoint outside the graph.
    pub fn run(&mut self, g: &DiGraph, lanes: &[MsBfsLane]) {
        self.run_budgeted(g, lanes, &QueryBudget::unlimited())
            .expect("an unlimited budget never trips"); // spg-analyze: allow(no-panic) — unlimited budgets cannot trip
    }

    /// [`MsBfsEngine::run`] under a cooperative [`QueryBudget`], charged one
    /// unit per edge scanned and polled at every level boundary of every
    /// phase. On `Err` the traversal stops within one level of the ceiling,
    /// the partial results are discarded (reading them panics, exactly like
    /// an engine that never ran), and — crucially for workspace reuse — the
    /// graph-sized bit arrays are restored to all-zero, so the engine is
    /// immediately reusable for the next run.
    ///
    /// # Panics
    /// As [`MsBfsEngine::run`].
    pub fn run_budgeted(
        &mut self,
        g: &DiGraph,
        lanes: &[MsBfsLane],
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        assert!(
            !lanes.is_empty() && lanes.len() <= B::LANES,
            "MS-BFS cohorts hold 1..={} lanes, got {}",
            B::LANES,
            lanes.len()
        );
        let n = g.vertex_count();
        self.fwd.begin(n);
        self.bwd.begin(n);
        self.halves_fwd.clear();
        self.halves_bwd.clear();
        self.lane_count = lanes.len();
        for (i, lane) in lanes.iter().enumerate() {
            assert!(
                (lane.source as usize) < n && (lane.target as usize) < n,
                "lane {i} endpoints must lie inside the graph"
            );
            assert!(
                lane.source != lane.target,
                "lane {i}: source and target must be distinct"
            );
            self.fwd.seed(i, lane.source, lane.target);
            self.bwd.seed(i, lane.target, lane.source);
            self.halves_fwd.push(lane.half_fwd());
            self.halves_bwd.push(lane.half_bwd());
        }
        // Record the seed level of both sides up front: every set bit is
        // then always covered by a record, which is what lets an abort at
        // any level boundary restore the all-zero invariant via `cleanup`.
        self.fwd.record_free_level();
        self.bwd.record_free_level();

        let mode = self.mode;
        let policy = self.policy;
        // Free phases: each side expands to its per-lane half-depth.
        let mut outcome = Self::free_phase(
            &mut self.fwd,
            g,
            Direction::Forward,
            &self.halves_fwd,
            mode,
            policy,
            budget,
        );
        if outcome.is_ok() {
            outcome = Self::free_phase(
                &mut self.bwd,
                g,
                Direction::Backward,
                &self.halves_bwd,
                mode,
                policy,
                budget,
            );
        }
        // Restricted phases: resume the paused frontiers; lane i's budget is
        // depth_i − half_i further levels, each discovery gated on the other
        // side's seen set. The backward pass runs after (and therefore
        // sees) the forward restricted discoveries, mirroring the
        // sequential engine.
        if outcome.is_ok() {
            outcome = Self::restricted_phase(
                &mut self.fwd,
                g,
                Direction::Forward,
                lanes,
                &self.halves_fwd,
                &self.bwd.seen,
                mode,
                policy,
                budget,
            );
        }
        if outcome.is_ok() {
            outcome = Self::restricted_phase(
                &mut self.bwd,
                g,
                Direction::Backward,
                lanes,
                &self.halves_bwd,
                &self.fwd.seen,
                mode,
                policy,
                budget,
            );
        }
        self.fwd.cleanup(lanes, |lane| lane.target);
        self.bwd.cleanup(lanes, |lane| lane.source);
        if outcome.is_ok() {
            self.fwd.index_lanes(lanes.len(), &self.halves_fwd);
            self.bwd.index_lanes(lanes.len(), &self.halves_bwd);
        }
        if outcome.is_err() {
            // Partial distances must never be readable: drop the records and
            // present as an engine that has not run.
            self.fwd.records_free.clear();
            self.fwd.offsets_free.clear();
            self.fwd.records_restricted.clear();
            self.fwd.offsets_restricted.clear();
            self.bwd.records_free.clear();
            self.bwd.offsets_free.clear();
            self.bwd.records_restricted.clear();
            self.bwd.offsets_restricted.clear();
            self.lane_count = 0;
        }
        outcome
    }

    /// Free phase of one side: level-synchronous expansion where lane `i`
    /// participates while the next level stays within `halves[i]`, parking
    /// its frontier in the paused set once its half-budget is spent. The
    /// seed level is recorded by the caller (see `run_budgeted`); the budget
    /// is polled only at level boundaries, where every set bit is covered
    /// by a record and an abort can restore the all-zero invariant.
    #[allow(clippy::too_many_arguments)]
    fn free_phase(
        side: &mut Side<B>,
        g: &DiGraph,
        dir: Direction,
        halves: &[u32],
        mode: FrontierMode,
        policy: FrontierPolicy,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        let mut depth = 0u32;
        let mut charged = 0usize;
        loop {
            let scans = side.stats.total_edge_scans();
            budget.charge((scans - charged) as u64)?;
            charged = scans;
            let pause_mask = lane_mask::<B, _>(halves, |&h| h == depth);
            side.pause(pause_mask);
            if side.frontier.is_empty() {
                break;
            }
            let level_mask = lane_mask::<B, _>(halves, |&h| h > depth);
            if !level_mask.any() {
                break;
            }
            if !side.step(g, dir, level_mask, None, mode, policy) {
                side.advance();
                break;
            }
            side.advance();
            side.record_free_level();
            depth += 1;
        }
        budget.charge((side.stats.total_edge_scans() - charged) as u64)?;
        Ok(())
    }

    /// Restricted phase of one side: resume from the paused frontiers and
    /// expand while any lane has remaining budget (`depth_i − half_i`
    /// levels), discovering only vertices in `other_seen`.
    #[allow(clippy::too_many_arguments)]
    fn restricted_phase(
        side: &mut Side<B>,
        g: &DiGraph,
        dir: Direction,
        lanes: &[MsBfsLane],
        halves: &[u32],
        other_seen: &[B],
        mode: FrontierMode,
        policy: FrontierPolicy,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        side.resume_from_paused();
        let mut c = 0u32;
        let mut charged = side.stats.total_edge_scans();
        loop {
            let scans = side.stats.total_edge_scans();
            budget.charge((scans - charged) as u64)?;
            charged = scans;
            if side.frontier.is_empty() {
                break;
            }
            let mut level_mask = B::zero();
            for (i, (lane, &half)) in lanes.iter().zip(halves).enumerate() {
                if lane.depth - half > c {
                    level_mask.set(i);
                }
            }
            if !level_mask.any() {
                break;
            }
            let discovered = side.step(g, dir, level_mask, Some(other_seen), mode, policy);
            side.advance();
            if !discovered {
                break;
            }
            for i in 0..side.frontier.len() {
                let v = side.frontier[i];
                side.records_restricted
                    .push((v, side.frontier_bits[v as usize]));
            }
            side.offsets_restricted.push(side.records_restricted.len());
            c += 1;
        }
        budget.charge((side.stats.total_edge_scans() - charged) as u64)?;
        Ok(())
    }

    /// Number of lanes of the last run.
    pub fn lane_count(&self) -> usize {
        self.lane_count
    }

    /// Visits every `(vertex, distance)` the given lane discovered on one
    /// side in the last run — forward distances `Δ(s, v)` for
    /// [`Direction::Forward`], backward distances `Δ(v, t)` for
    /// [`Direction::Backward`] — in ascending distance order. Includes the
    /// side's start vertex at distance 0.
    ///
    /// # Panics
    /// Panics if `lane` is not a lane index of the last run.
    pub fn for_each_lane_distance<F: FnMut(VertexId, u32)>(
        &self,
        dir: Direction,
        lane: usize,
        f: F,
    ) {
        self.for_each_lane_distance_to_depth(dir, lane, u32::MAX, f);
    }

    /// [`MsBfsEngine::for_each_lane_distance`] truncated to distances
    /// `≤ max_depth`. A query served by a deeper shared lane (the lane's
    /// budget is the maximum `k` of the queries sharing its pair) never
    /// consumes entries past its own `k` — the search-space filter would
    /// discard them anyway — so the materialisation loop can stop early.
    pub fn for_each_lane_distance_to_depth<F: FnMut(VertexId, u32)>(
        &self,
        dir: Direction,
        lane: usize,
        max_depth: u32,
        mut f: F,
    ) {
        assert!(lane < self.lane_count, "lane {lane} out of range");
        let side = match dir {
            Direction::Forward => &self.fwd,
            Direction::Backward => &self.bwd,
        };
        // The per-lane index (built once per run) holds this lane's entries
        // in ascending distance order, so the read touches only the lane's
        // own discoveries — never the other lanes' share of the records.
        let entries = &side.lane_entries[side.lane_starts[lane]..side.lane_starts[lane + 1]];
        for &(v, d) in entries {
            if d > max_depth {
                break;
            }
            f(v, d);
        }
    }

    /// Work counters of one side of the last run.
    pub fn side_stats(&self, dir: Direction) -> MsBfsStats {
        match dir {
            Direction::Forward => self.fwd.stats,
            Direction::Backward => self.bwd.stats,
        }
    }

    /// Bytes of buffer capacity retained for reuse across runs.
    pub fn retained_bytes(&self) -> usize {
        self.fwd.retained_bytes()
            + self.bwd.retained_bytes()
            + (self.halves_fwd.capacity() + self.halves_bwd.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Lane-block mask of lane indices whose entry in `values` satisfies `pred`.
fn lane_mask<B: LaneBlock, T>(values: &[T], pred: impl Fn(&T) -> bool) -> B {
    let mut mask = B::zero();
    for (i, v) in values.iter().enumerate() {
        if pred(v) {
            mask.set(i);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{DistanceStrategy, FlatDistances};
    use crate::INF_DIST;

    /// Figure 1(a) graph; naming s=0, a=1, c=2, t=3, h=4, b=5, i=6, j=7.
    fn figure1() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (1, 6),
                (2, 3),
                (2, 5),
                (4, 5),
                (5, 3),
                (5, 1),
                (5, 7),
                (6, 7),
                (7, 4),
            ],
        )
    }

    fn lane_distances<B: LaneBlock>(
        engine: &MsBfsEngine<B>,
        dir: Direction,
        lane: usize,
        n: usize,
    ) -> Vec<u32> {
        let mut dist = vec![INF_DIST; n];
        engine.for_each_lane_distance(dir, lane, |v, d| {
            assert_eq!(dist[v as usize], INF_DIST, "vertex {v} recorded twice");
            dist[v as usize] = d;
        });
        dist
    }

    #[test]
    fn lane_block_word_ops() {
        let mut a = Lanes256::zero();
        assert!(!a.any());
        assert_eq!(Lanes256::WORDS, 4);
        assert_eq!(Lanes256::LANES, 256);
        a.set(0);
        a.set(67);
        a.set(255);
        assert!(a.any() && a.test(67) && !a.test(66));
        assert_eq!(a.count_ones(), 3);
        let mut b = Lanes256::zero();
        b.set(67);
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert_eq!(a.and(b), b);
        assert_eq!(a.and_not(b).count_ones(), 2);
        assert!(!a.and_not(b).test(67));
        b.or_assign(a);
        assert_eq!(b, a);
    }

    /// One lane must reproduce the per-query balanced-bidirectional raw
    /// distances exactly — it is the same schedule, word-parallel. Holds at
    /// every block width (a wide block with one active lane is the same
    /// traversal with zero-padded words).
    #[test]
    fn single_lane_matches_bidirectional_flat_distances() {
        fn check<B: LaneBlock>() {
            let g = figure1();
            let mut engine = MsBfsEngine::<B>::new();
            let mut flat = FlatDistances::new();
            for k in 1..=8u32 {
                flat.compute(&g, 0, 3, k, DistanceStrategy::Bidirectional);
                engine.run(
                    &g,
                    &[MsBfsLane {
                        source: 0,
                        target: 3,
                        depth: k,
                    }],
                );
                let fwd = lane_distances(&engine, Direction::Forward, 0, 8);
                let bwd = lane_distances(&engine, Direction::Backward, 0, 8);
                for v in g.vertices() {
                    assert_eq!(fwd[v as usize], flat.raw_dist_from_s(v), "k={k} v={v} fwd");
                    assert_eq!(bwd[v as usize], flat.raw_dist_to_t(v), "k={k} v={v} bwd");
                }
            }
        }
        check::<Lanes64>();
        check::<Lanes128>();
        check::<Lanes256>();
    }

    /// The avoided endpoint may be discovered but never expanded: vertices
    /// only reachable through it stay undiscovered for that lane, while a
    /// lane with a different target sails past in the same run.
    #[test]
    fn avoid_vertex_blocks_expansion_per_lane() {
        // 0 → 1 → 2 → 3 → 4: vertex 4 is reachable only through 3.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut engine = MsBfsEngine::<Lanes64>::new();
        engine.run(
            &g,
            &[
                MsBfsLane {
                    source: 0,
                    target: 3,
                    depth: 8,
                },
                MsBfsLane {
                    source: 0,
                    target: 1,
                    depth: 8,
                },
            ],
        );
        let avoid3 = lane_distances(&engine, Direction::Forward, 0, 5);
        let avoid1 = lane_distances(&engine, Direction::Forward, 1, 5);
        assert_eq!(avoid3[3], 3, "the avoided vertex itself is discovered");
        assert_eq!(avoid3[4], INF_DIST, "but never expanded from");
        assert_eq!(avoid1[1], 1);
        assert_eq!(avoid1[2], INF_DIST, "lane 1 is cut at vertex 1 instead");
        assert_eq!(avoid1[0], 0);
        // Backward side of lane 0 (start 3, avoid 0): half = 4 free levels
        // walk in-edges 3 ← 2 ← 1 ← 0.
        let bwd = lane_distances(&engine, Direction::Backward, 0, 5);
        assert_eq!(bwd[3], 0);
        assert_eq!(bwd[2], 1);
    }

    /// Per-lane hop budgets pause and retire lanes independently: on a
    /// path graph the filtered distances admit exactly the path when the
    /// budget covers it.
    #[test]
    fn per_lane_depth_budgets_are_respected() {
        let g = DiGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut engine = MsBfsEngine::<Lanes64>::new();
        let lanes = [
            MsBfsLane {
                source: 0,
                target: 3,
                depth: 2, // too short: the 0→3 path needs 3 hops
            },
            MsBfsLane {
                source: 0,
                target: 3,
                depth: 3, // exact
            },
            MsBfsLane {
                source: 0,
                target: 5,
                depth: 5, // exact full path
            },
        ];
        engine.run(&g, &lanes);
        for (lane, spec) in lanes.iter().enumerate() {
            let mut fd = FlatDistances::new();
            fd.begin_load(6, spec.source, spec.target, spec.depth);
            engine.for_each_lane_distance(Direction::Forward, lane, |v, d| fd.push_forward(v, d));
            engine.for_each_lane_distance(Direction::Backward, lane, |v, d| fd.push_backward(v, d));
            let mut reference = FlatDistances::new();
            reference.compute(
                &g,
                spec.source,
                spec.target,
                spec.depth,
                DistanceStrategy::Single,
            );
            assert_eq!(fd.is_feasible(), reference.is_feasible(), "lane {lane}");
            for v in g.vertices() {
                assert_eq!(
                    fd.dist_from_s(v),
                    reference.dist_from_s(v),
                    "lane {lane} v {v}"
                );
                assert_eq!(fd.dist_to_t(v), reference.dist_to_t(v), "lane {lane} v {v}");
            }
        }
    }

    /// All frontier modes and direction-switch policies produce identical
    /// per-lane distances; the forced modes actually exercise their
    /// expansion kind.
    #[test]
    fn frontier_modes_agree_and_are_observable() {
        let g = crate::generators::gnm_random(60, 600, 42);
        let lanes: Vec<MsBfsLane> = (0..32)
            .map(|i| MsBfsLane {
                source: i as VertexId,
                target: (i + 7) as VertexId % 60,
                depth: 1 + (i % 6) as u32,
            })
            .collect();
        let mut reference: Option<Vec<Vec<u32>>> = None;
        let mut check = |mode: FrontierMode, policy: FrontierPolicy| {
            let mut engine = MsBfsEngine::<Lanes64>::new();
            engine.set_mode(mode);
            engine.set_policy(policy);
            assert_eq!(engine.mode(), mode);
            assert_eq!(engine.policy(), policy);
            engine.run(&g, &lanes);
            let dists: Vec<Vec<u32>> = (0..lanes.len())
                .flat_map(|lane| {
                    [
                        lane_distances(&engine, Direction::Forward, lane, 60),
                        lane_distances(&engine, Direction::Backward, lane, 60),
                    ]
                })
                .collect();
            match &reference {
                None => reference = Some(dists),
                Some(r) => assert_eq!(r, &dists, "{mode:?} / {policy:?} diverged"),
            }
            let fwd = engine.side_stats(Direction::Forward);
            let bwd = engine.side_stats(Direction::Backward);
            match mode {
                FrontierMode::TopDownOnly => {
                    assert_eq!(fwd.bottom_up_levels + bwd.bottom_up_levels, 0);
                    assert!(fwd.top_down_edge_scans > 0);
                }
                FrontierMode::BottomUpOnly => {
                    assert_eq!(fwd.top_down_levels + bwd.top_down_levels, 0);
                    assert!(fwd.bottom_up_edge_scans > 0);
                }
                FrontierMode::DirectionOptimizing => {
                    assert_eq!(
                        fwd.total_edge_scans(),
                        fwd.top_down_edge_scans + fwd.bottom_up_edge_scans
                    );
                }
            }
            let mut acc = SearchSpaceStats::default();
            fwd.accumulate_into(&mut acc, Direction::Forward);
            bwd.accumulate_into(&mut acc, Direction::Backward);
            assert_eq!(
                acc.total_edge_scans(),
                fwd.total_edge_scans() + bwd.total_edge_scans()
            );
        };
        for mode in [
            FrontierMode::TopDownOnly,
            FrontierMode::BottomUpOnly,
            FrontierMode::DirectionOptimizing,
        ] {
            for policy in [
                FrontierPolicy::default(),
                FrontierPolicy::Hysteresis {
                    alpha: 14,
                    beta: 24,
                },
                FrontierPolicy::Fixed { denominator: 2 },
                FrontierPolicy::Fixed { denominator: 8 },
            ] {
                check(mode, policy);
            }
        }
    }

    #[test]
    fn seeded_policy_reacts_to_the_scan_split() {
        // No bottom-up evidence: keep the defaults.
        assert_eq!(
            FrontierPolicy::seeded_from_scan_split(1000, 0),
            FrontierPolicy::default()
        );
        // Cheap gathers (bottom-up did an eighth of the top-down work):
        // enter bottom-up eagerly.
        let eager = FrontierPolicy::seeded_from_scan_split(8000, 1000);
        assert_eq!(eager, FrontierPolicy::Hysteresis { alpha: 1, beta: 4 });
        // Expensive gathers: raise the entry bar.
        let FrontierPolicy::Hysteresis { alpha, beta } =
            FrontierPolicy::seeded_from_scan_split(1000, 8000)
        else {
            panic!("seeded policies are hysteresis policies");
        };
        assert!(alpha > FrontierPolicy::DEFAULT_ALPHA);
        assert!(beta >= alpha);
    }

    /// Reuse across runs: a big run followed by a small one must not leak
    /// bits, records or stats between them.
    #[test]
    fn engine_reuse_is_clean() {
        let g = figure1();
        let mut engine = MsBfsEngine::<Lanes64>::new();
        let all_lanes: Vec<MsBfsLane> = (0..MAX_LANES)
            .map(|i| MsBfsLane {
                source: (i % 8) as VertexId,
                target: ((i % 8) + 1) as VertexId % 8,
                depth: 8,
            })
            .collect();
        engine.run(&g, &all_lanes);
        assert_eq!(engine.lane_count(), MAX_LANES);
        let big_retained = engine.retained_bytes();

        let mut fresh = MsBfsEngine::<Lanes64>::new();
        let small = [MsBfsLane {
            source: 0,
            target: 3,
            depth: 2,
        }];
        engine.run(&g, &small);
        fresh.run(&g, &small);
        assert_eq!(engine.lane_count(), 1);
        for dir in [Direction::Forward, Direction::Backward] {
            assert_eq!(
                lane_distances(&engine, dir, 0, 8),
                lane_distances(&fresh, dir, 0, 8),
                "reused engine must match a fresh one ({dir:?})"
            );
        }
        assert!(engine.retained_bytes() >= big_retained.min(1));
    }

    /// A 256-lane engine filled past the 64-lane capacity must agree with
    /// per-lane 64-lane runs bit for bit — the multi-word block is the same
    /// schedule with a wider payload.
    #[test]
    fn wide_blocks_match_narrow_engines_lane_for_lane() {
        let g = crate::generators::gnm_random(80, 700, 7);
        let lanes: Vec<MsBfsLane> = (0..150)
            .map(|i| MsBfsLane {
                source: (i % 80) as VertexId,
                target: ((i * 13 + 7) % 80) as VertexId,
                depth: 1 + (i % 7) as u32,
            })
            .filter(|lane| lane.source != lane.target)
            .collect();
        assert!(lanes.len() > MAX_LANES, "the point is exceeding one word");
        let mut wide = MsBfsEngine::<Lanes256>::new();
        wide.run(&g, &lanes);
        let mut narrow = MsBfsEngine::<Lanes64>::new();
        for (i, lane) in lanes.iter().enumerate() {
            narrow.run(&g, std::slice::from_ref(lane));
            for dir in [Direction::Forward, Direction::Backward] {
                assert_eq!(
                    lane_distances(&wide, dir, i, 80),
                    lane_distances(&narrow, dir, 0, 80),
                    "lane {i} {dir:?}"
                );
            }
        }
    }

    /// A budget abort at any level boundary must restore the all-zero bit
    /// invariant (the `begin` debug_assert would fire otherwise) and leave
    /// the engine bit-identical to a fresh one on the next run.
    #[test]
    fn budget_abort_restores_invariants_and_reuse() {
        fn check<B: LaneBlock>(lanes_count: usize) {
            let g = crate::generators::gnm_random(60, 600, 42);
            let lanes: Vec<MsBfsLane> = (0..lanes_count)
                .map(|i| MsBfsLane {
                    source: (i % 60) as VertexId,
                    target: ((i + 7) % 60) as VertexId,
                    depth: 1 + (i % 6) as u32,
                })
                .collect();
            let mut engine = MsBfsEngine::<B>::new();
            let mut aborted = 0;
            for limit in (0..2000u64).step_by(37) {
                let outcome = engine.run_budgeted(&g, &lanes, &QueryBudget::with_work_limit(limit));
                if outcome.is_err() {
                    assert_eq!(outcome, Err(BudgetExhausted::Work));
                    assert_eq!(engine.lane_count(), 0, "partial results are discarded");
                    aborted += 1;
                }
                // Whether aborted or not, the next full run must match a
                // fresh engine exactly.
                engine.run(&g, &lanes);
                let mut fresh = MsBfsEngine::<B>::new();
                fresh.run(&g, &lanes);
                for lane in 0..lanes.len() {
                    for dir in [Direction::Forward, Direction::Backward] {
                        assert_eq!(
                            lane_distances(&engine, dir, lane, 60),
                            lane_distances(&fresh, dir, lane, 60),
                            "limit={limit} lane={lane} {dir:?}"
                        );
                    }
                }
            }
            assert!(aborted > 0, "some ceilings must actually trip");
        }
        check::<Lanes64>(16);
        check::<Lanes256>(80);
    }

    #[test]
    #[should_panic(expected = "1..=64 lanes")]
    fn too_many_lanes_panic() {
        let g = figure1();
        let lanes = vec![
            MsBfsLane {
                source: 0,
                target: 1,
                depth: 2
            };
            65
        ];
        MsBfsEngine::<Lanes64>::new().run(&g, &lanes);
    }

    #[test]
    #[should_panic(expected = "1..=256 lanes")]
    fn too_many_lanes_panic_wide() {
        let g = figure1();
        let lanes = vec![
            MsBfsLane {
                source: 0,
                target: 1,
                depth: 2
            };
            257
        ];
        MsBfsEngine::<Lanes256>::new().run(&g, &lanes);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn source_equals_target_panics() {
        let g = figure1();
        MsBfsEngine::<Lanes64>::new().run(
            &g,
            &[MsBfsLane {
                source: 2,
                target: 2,
                depth: 3,
            }],
        );
    }
}
