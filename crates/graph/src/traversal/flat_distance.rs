//! Epoch-stamped flat distance search for the workspace hot path.
//!
//! [`FlatDistances`] computes exactly what [`DistanceIndex`] computes — the
//! t-avoiding forward distances `Δ(s, v)` and s-avoiding backward distances
//! `Δ(v, t)` under any [`DistanceStrategy`] — but stores them in two flat
//! graph-sized arrays whose entries are validated by an epoch stamp instead
//! of per-query hash maps. Reusing one instance across queries touches only
//! the vertices each query actually discovers: bumping the epoch invalidates
//! every stale entry in O(1), so there is no per-query clearing and, after
//! warm-up, no per-query allocation.
//!
//! A second structural win over the hash-map engine: the bidirectional
//! strategies' "finish inside the other side's explored region" phase reads
//! the other side's stamps directly. The hash-map engine has to clone the
//! other side's whole distance map as a snapshot; here no snapshot is needed
//! because a side's restricted expansion only consults the *other* side's
//! entries, which that side's own expansion never mutates mid-run.

use crate::budget::{BudgetExhausted, QueryBudget};
use crate::csr::{DiGraph, Direction, VertexId};
use crate::traversal::{DistanceStrategy, SearchSpaceStats};
use crate::INF_DIST;

/// One direction of epoch-stamped BFS state.
#[derive(Debug, Clone, Default)]
struct StampedSide {
    /// `(stamp, dist)` per global vertex id; valid iff stamp == current epoch.
    slots: Vec<(u32, u32)>,
    /// Vertices discovered this epoch, in discovery order.
    seen: Vec<VertexId>,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
    depth: u32,
    edge_scans: usize,
}

impl StampedSide {
    fn begin(&mut self, n: usize, source: VertexId, epoch: u32) {
        self.begin_empty(n);
        self.slots[source as usize] = (epoch, 0);
        self.seen.push(source);
        self.frontier.push(source);
    }

    /// Clears the per-query state without seeding a source — the externally-
    /// loaded mode ([`FlatDistances::begin_load`]) provides every entry,
    /// including the 0-distance source.
    fn begin_empty(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, (0, 0));
        }
        self.seen.clear();
        self.frontier.clear();
        self.depth = 0;
        self.edge_scans = 0;
    }

    #[inline]
    fn dist(&self, v: VertexId, epoch: u32) -> u32 {
        let (stamp, d) = self.slots[v as usize];
        if stamp == epoch {
            d
        } else {
            INF_DIST
        }
    }

    #[inline]
    fn contains(&self, v: VertexId, epoch: u32) -> bool {
        self.slots[v as usize].0 == epoch
    }
}

/// Reusable flat replacement for the per-query [`DistanceIndex`] hash maps.
///
/// [`DistanceIndex`]: crate::traversal::DistanceIndex
#[derive(Debug, Clone, Default)]
pub struct FlatDistances {
    epoch: u32,
    fwd: StampedSide,
    bwd: StampedSide,
    s: VertexId,
    t: VertexId,
    k: u32,
}

impl FlatDistances {
    /// Creates an empty instance; buffers grow on first use.
    pub fn new() -> Self {
        FlatDistances::default()
    }

    /// Runs the hop-bounded distance search for query `⟨s, t, k⟩` with the
    /// chosen strategy, reusing all buffers.
    ///
    /// # Panics
    /// Panics if `s == t` (mirrors [`DistanceIndex::compute`]).
    ///
    /// [`DistanceIndex::compute`]: crate::traversal::DistanceIndex::compute
    pub fn compute(
        &mut self,
        g: &DiGraph,
        s: VertexId,
        t: VertexId,
        k: u32,
        strategy: DistanceStrategy,
    ) {
        self.compute_budgeted(g, s, t, k, strategy, &QueryBudget::unlimited())
            .expect("an unlimited budget never trips"); // spg-analyze: allow(no-panic) — unlimited budgets cannot trip
    }

    /// [`FlatDistances::compute`] under a cooperative [`QueryBudget`]:
    /// the budget is charged one unit per edge scanned at every BFS **level
    /// boundary**, so an exhausted budget stops the search within one level
    /// of the ceiling. On `Err` the instance holds no valid entries for the
    /// query (the epoch is spent); the next `compute`/`begin_load` starts
    /// clean — an aborted run can never leak into a later one.
    ///
    /// # Panics
    /// Panics if `s == t` (mirrors [`FlatDistances::compute`]).
    pub fn compute_budgeted(
        &mut self,
        g: &DiGraph,
        s: VertexId,
        t: VertexId,
        k: u32,
        strategy: DistanceStrategy,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        assert!(
            s != t,
            "queries require distinct source and target vertices"
        );
        let n = g.vertex_count();
        self.s = s;
        self.t = t;
        self.k = k;
        self.next_epoch();
        self.fwd.begin(n, s, self.epoch);
        self.bwd.begin(n, t, self.epoch);

        match strategy {
            DistanceStrategy::Single => {
                self.run_side(g, Direction::Forward, k, false, budget)?;
                self.run_side(g, Direction::Backward, k, false, budget)?;
            }
            DistanceStrategy::Bidirectional => {
                let kf = k.div_ceil(2);
                let kb = k / 2;
                self.run_side(g, Direction::Forward, kf, false, budget)?;
                self.run_side(g, Direction::Backward, kb, false, budget)?;
                self.run_side(g, Direction::Forward, k - kf, true, budget)?;
                self.run_side(g, Direction::Backward, k - kb, true, budget)?;
            }
            DistanceStrategy::AdaptiveBidirectional => {
                while self.fwd.depth + self.bwd.depth < k
                    && !(self.fwd.frontier.is_empty() && self.bwd.frontier.is_empty())
                {
                    let advance_forward = if self.fwd.frontier.is_empty() {
                        false
                    } else if self.bwd.frontier.is_empty() {
                        true
                    } else {
                        self.fwd.frontier.len() <= self.bwd.frontier.len()
                    };
                    let dir = if advance_forward {
                        Direction::Forward
                    } else {
                        Direction::Backward
                    };
                    let before = self.scans(dir);
                    self.step(g, dir, false);
                    budget.charge((self.scans(dir) - before) as u64)?;
                }
                let fd = self.fwd.depth;
                let bd = self.bwd.depth;
                self.run_side(g, Direction::Forward, k - fd, true, budget)?;
                self.run_side(g, Direction::Backward, k - bd, true, budget)?;
            }
        }
        Ok(())
    }

    #[inline]
    fn scans(&self, dir: Direction) -> usize {
        match dir {
            Direction::Forward => self.fwd.edge_scans,
            Direction::Backward => self.bwd.edge_scans,
        }
    }

    /// Bumps the validity epoch, handling the (extremely rare) wrap by
    /// resetting every stamp explicitly.
    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.fwd.slots.fill((0, 0));
            self.bwd.slots.fill((0, 0));
            self.epoch = 1;
        }
    }

    /// Starts loading externally computed raw distances for query
    /// `⟨s, t, k⟩` on a graph with `n` vertices, instead of running the BFS
    /// itself. This is how the batch-shared MS-BFS Phase-1 engine
    /// materialises a cohort lane into a per-query workspace: after this
    /// call, push every vertex the forward lane discovered via
    /// [`FlatDistances::push_forward`] (including `s` at distance 0) and
    /// every vertex the backward lane discovered via
    /// [`FlatDistances::push_backward`] (including `t` at distance 0), each
    /// vertex at most once per side.
    ///
    /// The raw entries may extend beyond `k` (a shared lane runs to the
    /// *maximum* hop budget of the queries it serves); the search-space
    /// accessors ([`FlatDistances::dist_from_s`] and friends) filter with
    /// `Δ(s,v) + Δ(v,t) ≤ k` exactly as in the computed mode, so downstream
    /// phases see distances identical to a per-query
    /// [`FlatDistances::compute`] run. Loaded queries report zero traversal
    /// scans in [`FlatDistances::stats`]; the shared engine's scan counts
    /// are accounted at the cohort level.
    ///
    /// # Panics
    /// Panics if `s == t` (mirrors [`FlatDistances::compute`]).
    pub fn begin_load(&mut self, n: usize, s: VertexId, t: VertexId, k: u32) {
        assert!(
            s != t,
            "queries require distinct source and target vertices"
        );
        self.s = s;
        self.t = t;
        self.k = k;
        self.next_epoch();
        self.fwd.begin_empty(n);
        self.bwd.begin_empty(n);
    }

    /// Records a forward raw distance `Δ(s, v) = d` in loaded mode.
    #[inline]
    pub fn push_forward(&mut self, v: VertexId, d: u32) {
        self.fwd.slots[v as usize] = (self.epoch, d);
        self.fwd.seen.push(v);
    }

    /// Records a backward raw distance `Δ(v, t) = d` in loaded mode.
    #[inline]
    pub fn push_backward(&mut self, v: VertexId, d: u32) {
        self.bwd.slots[v as usize] = (self.epoch, d);
        self.bwd.seen.push(v);
    }

    /// Expands `steps` levels of one side (or until its frontier empties),
    /// charging the budget each level with the edges that level scanned.
    fn run_side(
        &mut self,
        g: &DiGraph,
        dir: Direction,
        steps: u32,
        restricted: bool,
        budget: &QueryBudget,
    ) -> Result<(), BudgetExhausted> {
        for _ in 0..steps {
            let before = self.scans(dir);
            let advanced = self.step(g, dir, restricted);
            budget.charge((self.scans(dir) - before) as u64)?;
            if !advanced {
                break;
            }
        }
        Ok(())
    }

    /// Expands one BFS level of one side. When `restricted`, only vertices
    /// already discovered by the *other* side may be newly discovered (the
    /// "finish inside the other side's region" phase of bidirectional
    /// search). Returns `false` once the frontier is empty.
    fn step(&mut self, g: &DiGraph, dir: Direction, restricted: bool) -> bool {
        let epoch = self.epoch;
        let (side, other, source, forbidden) = match dir {
            Direction::Forward => (&mut self.fwd, &self.bwd, self.s, self.t),
            Direction::Backward => (&mut self.bwd, &self.fwd, self.t, self.s),
        };
        if side.frontier.is_empty() {
            return false;
        }
        side.next.clear();
        for i in 0..side.frontier.len() {
            let u = side.frontier[i];
            if u == forbidden && u != source {
                continue;
            }
            for &v in g.neighbors(u, dir) {
                side.edge_scans += 1;
                if side.slots[v as usize].0 == epoch {
                    continue;
                }
                if restricted && !other.contains(v, epoch) {
                    continue;
                }
                side.slots[v as usize] = (epoch, side.depth + 1);
                side.seen.push(v);
                side.next.push(v);
            }
        }
        side.depth += 1;
        std::mem::swap(&mut side.frontier, &mut side.next);
        !side.frontier.is_empty()
    }

    /// Source vertex of the current query.
    #[inline]
    pub fn source(&self) -> VertexId {
        self.s
    }

    /// Target vertex of the current query.
    #[inline]
    pub fn target(&self) -> VertexId {
        self.t
    }

    /// Hop constraint of the current query.
    #[inline]
    pub fn hop_constraint(&self) -> u32 {
        self.k
    }

    /// Raw forward distance `Δ(s, v)` (before search-space filtering), or
    /// [`INF_DIST`] if the forward search never reached `v`.
    #[inline]
    pub fn raw_dist_from_s(&self, v: VertexId) -> u32 {
        self.fwd.dist(v, self.epoch)
    }

    /// Raw backward distance `Δ(v, t)`, or [`INF_DIST`] if unreached.
    #[inline]
    pub fn raw_dist_to_t(&self, v: VertexId) -> u32 {
        self.bwd.dist(v, self.epoch)
    }

    /// `Δ(s, v)` restricted to the search space: [`INF_DIST`] unless
    /// `Δ(s,v) + Δ(v,t) ≤ k` (matches [`DistanceIndex::dist_from_s`]).
    ///
    /// [`DistanceIndex::dist_from_s`]: crate::traversal::DistanceIndex::dist_from_s
    #[inline]
    pub fn dist_from_s(&self, v: VertexId) -> u32 {
        let df = self.fwd.dist(v, self.epoch);
        let db = self.bwd.dist(v, self.epoch);
        if df != INF_DIST && db != INF_DIST && df + db <= self.k {
            df
        } else {
            INF_DIST
        }
    }

    /// `Δ(v, t)` restricted to the search space (matches
    /// [`DistanceIndex::dist_to_t`]).
    ///
    /// [`DistanceIndex::dist_to_t`]: crate::traversal::DistanceIndex::dist_to_t
    #[inline]
    pub fn dist_to_t(&self, v: VertexId) -> u32 {
        let df = self.fwd.dist(v, self.epoch);
        let db = self.bwd.dist(v, self.epoch);
        if df != INF_DIST && db != INF_DIST && df + db <= self.k {
            db
        } else {
            INF_DIST
        }
    }

    /// `true` if `v` belongs to the search space `Δ(s,v) + Δ(v,t) ≤ k`.
    #[inline]
    pub fn in_search_space(&self, v: VertexId) -> bool {
        self.dist_from_s(v) != INF_DIST
    }

    /// `true` if the query is feasible (`t` reachable from `s` within `k`).
    pub fn is_feasible(&self) -> bool {
        self.in_search_space(self.t)
    }

    /// Vertices the forward search discovered (a superset of the search
    /// space; filter with [`FlatDistances::in_search_space`]).
    #[inline]
    pub fn forward_seen(&self) -> &[VertexId] {
        &self.fwd.seen
    }

    /// Work counters in [`SearchSpaceStats`] form; `space_vertices` is
    /// filled by the caller once the space is materialised.
    pub fn stats(&self) -> SearchSpaceStats {
        SearchSpaceStats {
            forward_edge_scans: self.fwd.edge_scans,
            backward_edge_scans: self.bwd.edge_scans,
            bottom_up_edge_scans: 0,
            space_vertices: 0,
        }
    }

    /// Live bytes attributable to the current query: the discovered vertex
    /// lists and their distance entries (the stamped arrays themselves are
    /// retained capacity, reported by [`FlatDistances::retained_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        (self.fwd.seen.len() + self.bwd.seen.len())
            * (std::mem::size_of::<VertexId>() + std::mem::size_of::<(u32, u32)>())
    }

    /// Bytes of capacity retained for reuse across queries.
    pub fn retained_bytes(&self) -> usize {
        let side = |s: &StampedSide| {
            s.slots.capacity() * std::mem::size_of::<(u32, u32)>()
                + (s.seen.capacity() + s.frontier.capacity() + s.next.capacity())
                    * std::mem::size_of::<VertexId>()
        };
        side(&self.fwd) + side(&self.bwd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::DistanceIndex;

    /// Figure 1(a) graph; naming s=0, a=1, c=2, t=3, h=4, b=5, i=6, j=7.
    fn figure1() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (1, 6),
                (2, 3),
                (2, 5),
                (4, 5),
                (5, 3),
                (5, 1),
                (5, 7),
                (6, 7),
                (7, 4),
            ],
        )
    }

    #[test]
    fn agrees_with_distance_index_on_all_strategies() {
        let g = figure1();
        let mut flat = FlatDistances::new();
        for strategy in DistanceStrategy::ALL {
            for k in 1..=8u32 {
                let idx = DistanceIndex::compute(&g, 0, 3, k, strategy);
                flat.compute(&g, 0, 3, k, strategy);
                assert_eq!(flat.is_feasible(), idx.is_feasible(), "k={k}");
                for v in g.vertices() {
                    assert_eq!(
                        flat.dist_from_s(v),
                        idx.dist_from_s(v),
                        "{} k={k} v={v}",
                        strategy.name()
                    );
                    assert_eq!(
                        flat.dist_to_t(v),
                        idx.dist_to_t(v),
                        "{} k={k} v={v}",
                        strategy.name()
                    );
                    assert_eq!(flat.in_search_space(v), idx.in_search_space(v));
                }
                // Work counters match the hash-map engine exactly: the
                // traversal order is identical.
                assert_eq!(
                    flat.stats().forward_edge_scans + flat.stats().backward_edge_scans,
                    idx.stats().total_edge_scans(),
                    "{} k={k}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn agrees_with_distance_index_on_random_graphs() {
        for case in 0..20u64 {
            let n = 20 + (case as usize % 30);
            let g = crate::generators::gnm_random(n, 4 * n, 1234 + case);
            let (s, t) = (0u32, (n - 1) as u32);
            let mut flat = FlatDistances::new();
            for strategy in DistanceStrategy::ALL {
                for k in [2u32, 4, 6, 8] {
                    let idx = DistanceIndex::compute(&g, s, t, k, strategy);
                    flat.compute(&g, s, t, k, strategy);
                    for v in g.vertices() {
                        assert_eq!(
                            flat.dist_from_s(v),
                            idx.dist_from_s(v),
                            "case {case} {} k={k} v={v}",
                            strategy.name()
                        );
                        assert_eq!(flat.dist_to_t(v), idx.dist_to_t(v));
                    }
                }
            }
        }
    }

    #[test]
    fn reuse_across_queries_and_accessors() {
        let g = figure1();
        let mut flat = FlatDistances::new();
        flat.compute(&g, 0, 3, 7, DistanceStrategy::AdaptiveBidirectional);
        assert!(flat.is_feasible());
        assert_eq!(flat.source(), 0);
        assert_eq!(flat.target(), 3);
        assert_eq!(flat.hop_constraint(), 7);
        assert_eq!(flat.raw_dist_from_s(1), 1);
        assert!(flat.forward_seen().contains(&1));
        assert!(flat.memory_bytes() > 0);
        assert!(flat.retained_bytes() >= flat.memory_bytes());
        // A later, smaller query must not leak the previous epoch's entries.
        flat.compute(&g, 0, 3, 3, DistanceStrategy::AdaptiveBidirectional);
        assert!(!flat.in_search_space(6), "vertex i is out of space at k=3");
        assert_eq!(flat.raw_dist_to_t(6), INF_DIST);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_source_and_target_panics() {
        let g = figure1();
        FlatDistances::new().compute(&g, 2, 2, 3, DistanceStrategy::Single);
    }

    #[test]
    fn budget_abort_is_reuse_safe() {
        let g = figure1();
        let mut flat = FlatDistances::new();
        for strategy in DistanceStrategy::ALL {
            // Kill the search at every possible work ceiling, then prove a
            // full re-run on the same instance matches a fresh one exactly.
            for limit in 0..16u64 {
                let killed = flat.compute_budgeted(
                    &g,
                    0,
                    3,
                    7,
                    strategy,
                    &QueryBudget::with_work_limit(limit),
                );
                if killed.is_ok() {
                    break;
                }
                assert_eq!(killed, Err(BudgetExhausted::Work));
                flat.compute(&g, 0, 3, 7, strategy);
                let mut fresh = FlatDistances::new();
                fresh.compute(&g, 0, 3, 7, strategy);
                for v in g.vertices() {
                    assert_eq!(
                        flat.dist_from_s(v),
                        fresh.dist_from_s(v),
                        "{} limit={limit} v={v}",
                        strategy.name()
                    );
                    assert_eq!(flat.dist_to_t(v), fresh.dist_to_t(v));
                }
            }
        }
        // An already-expired deadline trips on the first level boundary.
        let expired = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let err = flat.compute_budgeted(
            &g,
            0,
            3,
            7,
            DistanceStrategy::Single,
            &QueryBudget::with_deadline(expired),
        );
        assert_eq!(err, Err(BudgetExhausted::Deadline));
    }
}
