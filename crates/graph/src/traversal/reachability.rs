//! k-hop reachability queries.
//!
//! The paper's query workload only contains pairs `(s, t)` where `t` is
//! reachable from `s` within `k` hops; infeasible pairs "can be efficiently
//! filtered out by answering k-hop reachability queries" (§6.1). The workload
//! crate uses [`k_hop_reachable`] for exactly that filtering, and
//! [`shortest_distance`] to bucket queries by `Δ(s, t)` for Figure 10(b).

use std::collections::VecDeque;

use crate::csr::{DiGraph, VertexId};
use crate::hash::FxHashSet;

/// `true` if `t` is reachable from `s` by a directed path of length ≤ `k`.
///
/// `s` is considered reachable from itself in 0 hops.
pub fn k_hop_reachable(g: &DiGraph, s: VertexId, t: VertexId, k: u32) -> bool {
    if s == t {
        return true;
    }
    let mut visited: FxHashSet<VertexId> = FxHashSet::default();
    visited.insert(s);
    let mut queue: VecDeque<(VertexId, u32)> = VecDeque::new();
    queue.push_back((s, 0));
    while let Some((u, d)) = queue.pop_front() {
        if d >= k {
            continue;
        }
        for &v in g.out_neighbors(u) {
            if v == t {
                return true;
            }
            if visited.insert(v) {
                queue.push_back((v, d + 1));
            }
        }
    }
    false
}

/// Shortest directed distance from `s` to `t`, or `None` if unreachable.
pub fn shortest_distance(g: &DiGraph, s: VertexId, t: VertexId) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let mut visited: FxHashSet<VertexId> = FxHashSet::default();
    visited.insert(s);
    let mut queue: VecDeque<(VertexId, u32)> = VecDeque::new();
    queue.push_back((s, 0));
    while let Some((u, d)) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if v == t {
                return Some(d + 1);
            }
            if visited.insert(v) {
                queue.push_back((v, d + 1));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DiGraph {
        DiGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
    }

    #[test]
    fn reachability_respects_hop_budget() {
        let g = cycle(6);
        assert!(k_hop_reachable(&g, 0, 3, 3));
        assert!(!k_hop_reachable(&g, 0, 3, 2));
        assert!(k_hop_reachable(&g, 0, 0, 0));
    }

    #[test]
    fn unreachable_pairs_are_rejected() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!k_hop_reachable(&g, 0, 3, 10));
        assert_eq!(shortest_distance(&g, 0, 3), None);
    }

    #[test]
    fn shortest_distance_on_cycle() {
        let g = cycle(5);
        assert_eq!(shortest_distance(&g, 0, 0), Some(0));
        assert_eq!(shortest_distance(&g, 0, 1), Some(1));
        assert_eq!(shortest_distance(&g, 0, 4), Some(4));
        assert_eq!(shortest_distance(&g, 4, 0), Some(1));
    }

    #[test]
    fn shortest_distance_prefers_shortcuts() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        assert_eq!(shortest_distance(&g, 0, 4), Some(1));
        assert!(k_hop_reachable(&g, 0, 4, 1));
    }
}
