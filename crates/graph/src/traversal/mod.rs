//! Graph traversal: hop-bounded BFS, bidirectional distance computation and
//! k-hop reachability.
//!
//! The EVE algorithm needs, per query `⟨s, t, k⟩`, the shortest distances
//! `Δ(s, v)` (never routing through `t`) and `Δ(v, t)` (never routing through
//! `s`) for every vertex in the *search space* `{v : Δ(s,v) + Δ(v,t) ≤ k}`.
//! Section 3.3 / Figure 6(a) of the paper compares three strategies for
//! obtaining them — single-directional BFS, balanced bidirectional BFS, and
//! adaptive bidirectional BFS — which are ablated in Figure 11. All three are
//! implemented here behind [`DistanceStrategy`] and produce identical
//! [`DistanceIndex`] contents; they differ only in how many vertices/edges
//! they touch ([`SearchSpaceStats`]).

mod bfs;
mod bidirectional;
mod flat_distance;
mod msbfs;
mod reachability;
mod search_space;

pub use bfs::{bfs_distances_from, bfs_distances_to, BfsOptions};
pub use bidirectional::{DistanceIndex, DistanceStrategy, SearchSpaceStats};
pub use flat_distance::FlatDistances;
pub use msbfs::{
    FrontierMode, FrontierPolicy, LaneBlock, Lanes128, Lanes256, Lanes64, MsBfsEngine, MsBfsLane,
    MsBfsStats, MAX_LANES,
};
pub use reachability::{k_hop_reachable, shortest_distance};
pub use search_space::{SearchSpace, SpaceScratch, NO_LOCAL};
