//! Dense compaction of the per-query search space `G^k_st`.
//!
//! The [`DistanceIndex`] identifies the search space sparsely — hash maps
//! from global vertex ids to distances. Every downstream EVE phase
//! (propagation, edge labeling, verification) then used to probe those hash
//! maps once per adjacency entry, which dominates the constant factor of the
//! whole pipeline. [`SearchSpace`] removes that cost: the space vertices are
//! relabeled to dense **local ids** `0..n'` (in ascending global-id order, so
//! local order and global order coincide) and both adjacency directions of
//! `G^k_st` are re-materialised as local-id CSR slices. Downstream phases
//! index flat `Vec`s by local id; no hash map is touched after construction.
//!
//! Construction itself is a linear scan over the adjacency of the space
//! vertices. The global→local translation uses [`SpaceScratch`], an
//! epoch-stamped array sized by the *graph* (not the query) that is reused
//! across queries without clearing — bumping the epoch invalidates every
//! entry in O(1).

use crate::csr::{DiGraph, Direction, VertexId};
use crate::traversal::{DistanceIndex, FlatDistances};

/// Sentinel local id meaning "not in the search space".
pub const NO_LOCAL: u32 = u32::MAX;

/// Reusable epoch-stamped global→local vertex translation table.
///
/// Sized to the host graph's vertex count on first use; reuse across queries
/// (and across graphs — the table regrows as needed) never requires a clear.
#[derive(Debug, Clone, Default)]
pub struct SpaceScratch {
    /// Current epoch; entries with a different stamp are invalid.
    epoch: u32,
    /// `(stamp, local id)` per global vertex id.
    slots: Vec<(u32, u32)>,
}

impl SpaceScratch {
    /// Creates an empty scratch table.
    pub fn new() -> Self {
        SpaceScratch::default()
    }

    /// Starts a new translation epoch covering global ids `0..n`.
    fn begin(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, (0, NO_LOCAL));
        }
        // Epoch 0 is the "never written" stamp of freshly grown slots.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: invalidate everything explicitly.
            self.slots.fill((0, NO_LOCAL));
            self.epoch = 1;
        }
    }

    #[inline]
    fn set(&mut self, global: VertexId, local: u32) {
        self.slots[global as usize] = (self.epoch, local);
    }

    #[inline]
    fn get(&self, global: VertexId) -> u32 {
        let (stamp, local) = self.slots[global as usize];
        if stamp == self.epoch {
            local
        } else {
            NO_LOCAL
        }
    }

    /// Heap footprint of the translation table in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

/// The compacted search space of one query: the vertices of `G^k_st`
/// relabeled to dense local ids `0..n'` with flat distance arrays and a
/// local-id CSR of both adjacency directions.
///
/// An edge `(u, v)` of the host graph is kept iff
/// `Δ(s,u) + 1 + Δ(v,t) ≤ k` — exactly the edges
/// [`DistanceIndex::edge_in_space`] accepts, i.e. the edge set of `G^k_st`.
///
/// The structure is a reusable container: [`SearchSpace::rebuild`] refills it
/// for a new query while retaining every buffer's capacity, so a warmed-up
/// instance performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    k: u32,
    s_local: u32,
    t_local: u32,
    /// Local id → global id, ascending (so local order == global order).
    verts: Vec<VertexId>,
    /// `Δ(s, v)` per local id.
    dist_s: Vec<u32>,
    /// `Δ(v, t)` per local id.
    dist_t: Vec<u32>,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
}

impl SearchSpace {
    /// Creates an empty, reusable container.
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// One-shot convenience constructor (allocates a fresh scratch table).
    pub fn build(g: &DiGraph, index: &DistanceIndex) -> SearchSpace {
        let mut space = SearchSpace::new();
        let mut scratch = SpaceScratch::new();
        space.rebuild(g, index, &mut scratch);
        space
    }

    /// Refills the container with the search space of `index`, reusing all
    /// buffer capacity from previous queries.
    pub fn rebuild(&mut self, g: &DiGraph, index: &DistanceIndex, scratch: &mut SpaceScratch) {
        self.reset(index.hop_constraint());
        if !index.is_feasible() {
            self.finish_empty();
            return;
        }
        self.verts.extend(index.space_vertices());
        self.verts.sort_unstable();
        self.rebuild_inner(
            g,
            scratch,
            index.source(),
            index.target(),
            |v| index.dist_from_s(v),
            |v| index.dist_to_t(v),
        );
    }

    /// Like [`SearchSpace::rebuild`], but sourced from the epoch-stamped
    /// [`FlatDistances`] engine — the hot path used by the reusable query
    /// workspace, which never touches a hash map.
    pub fn rebuild_from_flat(
        &mut self,
        g: &DiGraph,
        fd: &FlatDistances,
        scratch: &mut SpaceScratch,
    ) {
        self.reset(fd.hop_constraint());
        if !fd.is_feasible() {
            self.finish_empty();
            return;
        }
        self.verts.extend(
            fd.forward_seen()
                .iter()
                .copied()
                .filter(|&v| fd.in_search_space(v)),
        );
        self.verts.sort_unstable();
        self.rebuild_inner(
            g,
            scratch,
            fd.source(),
            fd.target(),
            |v| fd.dist_from_s(v),
            |v| fd.dist_to_t(v),
        );
    }

    fn reset(&mut self, k: u32) {
        self.k = k;
        self.verts.clear();
        self.dist_s.clear();
        self.dist_t.clear();
        self.out_offsets.clear();
        self.out_targets.clear();
        self.in_offsets.clear();
        self.in_sources.clear();
        self.s_local = NO_LOCAL;
        self.t_local = NO_LOCAL;
    }

    fn finish_empty(&mut self) {
        self.out_offsets.push(0);
        self.in_offsets.push(0);
    }

    /// Shared tail of the rebuild paths: `self.verts` holds the sorted space
    /// vertices; fills the distance arrays, endpoint locals and both CSR
    /// directions.
    fn rebuild_inner<Fs, Ft>(
        &mut self,
        g: &DiGraph,
        scratch: &mut SpaceScratch,
        s: VertexId,
        t: VertexId,
        dist_s: Fs,
        dist_t: Ft,
    ) where
        Fs: Fn(VertexId) -> u32,
        Ft: Fn(VertexId) -> u32,
    {
        scratch.begin(g.vertex_count());
        for (local, &v) in self.verts.iter().enumerate() {
            scratch.set(v, local as u32);
            self.dist_s.push(dist_s(v));
            self.dist_t.push(dist_t(v));
            if v == s {
                self.s_local = local as u32;
            } else if v == t {
                self.t_local = local as u32;
            }
        }
        debug_assert!(self.s_local != NO_LOCAL && self.t_local != NO_LOCAL);

        // Out-adjacency: for each space vertex, keep the out-edges of G^k_st.
        // Host adjacency is sorted by global id and local order preserves
        // global order, so every CSR slice comes out sorted.
        self.out_offsets.push(0);
        for (local, &u) in self.verts.iter().enumerate() {
            let du = self.dist_s[local];
            for &v in g.out_neighbors(u) {
                let lv = scratch.get(v);
                if lv == NO_LOCAL {
                    continue;
                }
                if du + 1 + self.dist_t[lv as usize] <= self.k {
                    self.out_targets.push(lv);
                }
            }
            self.out_offsets.push(self.out_targets.len() as u32);
        }

        // In-adjacency of the same edge set.
        self.in_offsets.push(0);
        for (local, &v) in self.verts.iter().enumerate() {
            let dv = self.dist_t[local];
            for &u in g.in_neighbors(v) {
                let lu = scratch.get(u);
                if lu == NO_LOCAL {
                    continue;
                }
                if self.dist_s[lu as usize] + 1 + dv <= self.k {
                    self.in_sources.push(lu);
                }
            }
            self.in_offsets.push(self.in_sources.len() as u32);
        }
        debug_assert_eq!(self.out_targets.len(), self.in_sources.len());
    }

    /// Hop constraint the space was built for.
    #[inline]
    pub fn hop_constraint(&self) -> u32 {
        self.k
    }

    /// `true` if the query was infeasible (the space has no vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Number of vertices `n'` in the space.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.verts.len()
    }

    /// Number of `G^k_st` edges in the space.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Local id of the query source (only valid when non-empty).
    #[inline]
    pub fn source_local(&self) -> u32 {
        self.s_local
    }

    /// Local id of the query target (only valid when non-empty).
    #[inline]
    pub fn target_local(&self) -> u32 {
        self.t_local
    }

    /// Global id of local vertex `v`.
    #[inline]
    pub fn global(&self, v: u32) -> VertexId {
        self.verts[v as usize]
    }

    /// The space's vertices as sorted global ids (local order == global
    /// order). This is the **witness** the result cache records per entry
    /// for scoped invalidation: every edge whose removal could change the
    /// answer has both endpoints in this set.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.verts
    }

    /// Local id of global vertex `v`, if it belongs to the space
    /// (`O(log n')` — intended for tests and non-hot-path callers).
    pub fn local_of(&self, v: VertexId) -> Option<u32> {
        self.verts.binary_search(&v).ok().map(|i| i as u32)
    }

    /// `Δ(s, v)` for local id `v`.
    #[inline]
    pub fn dist_from_s(&self, v: u32) -> u32 {
        self.dist_s[v as usize]
    }

    /// `Δ(v, t)` for local id `v`.
    #[inline]
    pub fn dist_to_t(&self, v: u32) -> u32 {
        self.dist_t[v as usize]
    }

    /// Local-id out-neighbours of local vertex `u` within `G^k_st`, sorted.
    #[inline]
    pub fn out_neighbors(&self, u: u32) -> &[u32] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Local-id in-neighbours of local vertex `v` within `G^k_st`, sorted.
    #[inline]
    pub fn in_neighbors(&self, v: u32) -> &[u32] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Neighbours in the chosen direction (out for forward, in for backward).
    #[inline]
    pub fn neighbors(&self, v: u32, dir: Direction) -> &[u32] {
        match dir {
            Direction::Forward => self.out_neighbors(v),
            Direction::Backward => self.in_neighbors(v),
        }
    }

    /// The remaining distance that the forward-looking pruning rule of
    /// Theorem 3.6 consults: `Δ(v, t)` for forward propagation, `Δ(s, v)`
    /// for backward propagation.
    #[inline]
    pub fn remaining_dist(&self, v: u32, dir: Direction) -> u32 {
        match dir {
            Direction::Forward => self.dist_to_t(v),
            Direction::Backward => self.dist_from_s(v),
        }
    }

    /// Live bytes of the current query's compacted space (length-based, so a
    /// small query on a warmed container is not charged for capacity retained
    /// from earlier, larger queries; see [`SearchSpace::retained_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        let w = std::mem::size_of::<u32>();
        (self.verts.len()
            + self.dist_s.len()
            + self.dist_t.len()
            + self.out_offsets.len()
            + self.out_targets.len()
            + self.in_offsets.len()
            + self.in_sources.len())
            * w
    }

    /// Bytes of buffer capacity retained for reuse across queries.
    pub fn retained_bytes(&self) -> usize {
        let w = std::mem::size_of::<u32>();
        (self.verts.capacity()
            + self.dist_s.capacity()
            + self.dist_t.capacity()
            + self.out_offsets.capacity()
            + self.out_targets.capacity()
            + self.in_offsets.capacity()
            + self.in_sources.capacity())
            * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::DistanceStrategy;

    /// Figure 1(a) graph; naming s=0, a=1, c=2, t=3, h=4, b=5, i=6, j=7.
    fn figure1() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (1, 6),
                (2, 3),
                (2, 5),
                (4, 5),
                (5, 3),
                (5, 1),
                (5, 7),
                (6, 7),
                (7, 4),
            ],
        )
    }

    fn index(g: &DiGraph, k: u32) -> DistanceIndex {
        DistanceIndex::compute(g, 0, 3, k, DistanceStrategy::AdaptiveBidirectional)
    }

    #[test]
    fn space_matches_distance_index_membership() {
        let g = figure1();
        for k in 2..=8u32 {
            let idx = index(&g, k);
            let space = SearchSpace::build(&g, &idx);
            assert_eq!(space.vertex_count(), idx.space_size(), "k={k}");
            for v in g.vertices() {
                assert_eq!(
                    space.local_of(v).is_some(),
                    idx.in_search_space(v),
                    "k={k} v={v}"
                );
            }
            for local in 0..space.vertex_count() as u32 {
                let v = space.global(local);
                assert_eq!(space.dist_from_s(local), idx.dist_from_s(v));
                assert_eq!(space.dist_to_t(local), idx.dist_to_t(v));
            }
        }
    }

    #[test]
    fn edges_are_exactly_the_gkst_edges() {
        let g = figure1();
        for k in 2..=8u32 {
            let idx = index(&g, k);
            let space = SearchSpace::build(&g, &idx);
            let mut space_edges: Vec<(VertexId, VertexId)> = Vec::new();
            for u in 0..space.vertex_count() as u32 {
                for &v in space.out_neighbors(u) {
                    space_edges.push((space.global(u), space.global(v)));
                }
            }
            let expected: Vec<(VertexId, VertexId)> = g
                .edges()
                .filter(|&(u, v)| idx.edge_in_space(u, v))
                .collect();
            assert_eq!(space_edges, expected, "k={k}");
            assert_eq!(space.edge_count(), expected.len());
        }
    }

    #[test]
    fn in_adjacency_mirrors_out_adjacency() {
        let g = figure1();
        let idx = index(&g, 7);
        let space = SearchSpace::build(&g, &idx);
        for u in 0..space.vertex_count() as u32 {
            for &v in space.out_neighbors(u) {
                assert!(space.in_neighbors(v).contains(&u));
            }
            // CSR slices stay sorted because local order preserves global order.
            assert!(space.out_neighbors(u).windows(2).all(|w| w[0] < w[1]));
            assert!(space.in_neighbors(u).windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(
            space.neighbors(0, Direction::Forward),
            space.out_neighbors(0)
        );
        assert_eq!(
            space.neighbors(0, Direction::Backward),
            space.in_neighbors(0)
        );
    }

    #[test]
    fn endpoints_and_reuse() {
        let g = figure1();
        let mut scratch = SpaceScratch::new();
        let mut space = SearchSpace::new();
        // Reuse the same containers across different k values.
        for k in [7u32, 3, 8, 2] {
            let idx = index(&g, k);
            space.rebuild(&g, &idx, &mut scratch);
            assert_eq!(space.global(space.source_local()), 0, "k={k}");
            assert_eq!(space.global(space.target_local()), 3, "k={k}");
            assert_eq!(space.hop_constraint(), k);
            assert_eq!(
                space.remaining_dist(space.source_local(), Direction::Forward),
                idx.dist_to_t(0)
            );
            assert_eq!(
                space.remaining_dist(space.target_local(), Direction::Backward),
                idx.dist_from_s(3)
            );
            assert!(space.memory_bytes() > 0);
            assert!(scratch.memory_bytes() > 0);
        }
    }

    #[test]
    fn infeasible_query_yields_empty_space() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let idx = DistanceIndex::compute(&g, 0, 3, 6, DistanceStrategy::AdaptiveBidirectional);
        let space = SearchSpace::build(&g, &idx);
        assert!(space.is_empty());
        assert_eq!(space.vertex_count(), 0);
        assert_eq!(space.edge_count(), 0);
        assert_eq!(space.local_of(0), None);
    }

    #[test]
    fn scratch_epochs_isolate_queries() {
        let g = figure1();
        let mut scratch = SpaceScratch::new();
        let mut space = SearchSpace::new();
        // k = 3 excludes vertex i (6); a later k = 8 rebuild must include it
        // again, and a subsequent k = 3 rebuild must exclude it without any
        // clearing in between.
        let small = index(&g, 3);
        let large = index(&g, 8);
        space.rebuild(&g, &small, &mut scratch);
        assert_eq!(space.local_of(6), None);
        space.rebuild(&g, &large, &mut scratch);
        assert!(space.local_of(6).is_some());
        space.rebuild(&g, &small, &mut scratch);
        assert_eq!(space.local_of(6), None);
    }
}
