//! # spg-graph — directed graph substrate
//!
//! This crate provides the graph infrastructure that every other crate in the
//! workspace builds on:
//!
//! * [`DiGraph`] — a compact, immutable directed graph in CSR (compressed
//!   sparse row) form with both out- and in-adjacency, suitable for the
//!   forward *and* backward traversals required by the EVE algorithm.
//! * [`GraphBuilder`] — deduplicating, self-loop-filtering builder.
//! * [`traversal`] — BFS distance computation, including the single,
//!   bidirectional and **adaptive bidirectional** search strategies compared
//!   in §3.3 / Figure 11 of the paper, plus hop-bounded reachability.
//! * [`generators`] — deterministic random graph generators used to simulate
//!   the paper's 15 real-world networks (Table 2) at laptop scale.
//! * [`io`] — plain text edge-list reading and writing.
//! * [`subgraph`] — edge-subgraph extraction (used for `SPG_k`, `SPGᵘ_k` and
//!   `G^k_st` materialisation).
//! * [`hash`] — a small deterministic Fx-style hasher so hot hash maps keyed
//!   by vertex ids do not pay the SipHash cost.
//! * [`versioned`] — [`VersionedGraph`], a handle stamping every graph
//!   snapshot with a process-unique monotone [`GraphVersion`] so memoising
//!   layers (the `spg_core` result cache) can never serve stale answers.
//! * [`delta`] — [`EdgeDelta`] batches applied as CSR overlays for
//!   streaming updates that keep the version (and unaffected cache
//!   entries) alive.
//! * [`budget`] — [`QueryBudget`], the cooperative cancellation token
//!   (wall-clock deadline + work ceiling) the traversal engines poll at
//!   level boundaries.
//!
//! The crate is `#![forbid(unsafe_code)]`; all hot paths rely on index-based
//! CSR traversal rather than pointer tricks.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod hash;
pub mod io;
pub mod properties;
pub mod subgraph;
pub mod traversal;
pub mod versioned;

pub use budget::{BudgetExhausted, QueryBudget};
pub use builder::GraphBuilder;
pub use csr::{DiGraph, Direction, EdgeId, VertexId};
pub use delta::{multi_source_distances, DeltaError, DeltaOp, DeltaVersion, EdgeDelta};
pub use properties::DegreeStats;
pub use subgraph::EdgeSubgraph;
pub use traversal::{
    bfs_distances_from, bfs_distances_to, k_hop_reachable, DistanceIndex, DistanceStrategy,
    FlatDistances, FrontierMode, FrontierPolicy, LaneBlock, Lanes128, Lanes256, Lanes64,
    MsBfsEngine, MsBfsLane, MsBfsStats, SearchSpace, SearchSpaceStats, SpaceScratch,
};
pub use versioned::{GraphVersion, VersionedGraph};

/// Sentinel distance meaning "unreachable / outside the search space".
pub const INF_DIST: u32 = u32::MAX;

// Concurrency audit: the batch executor in `spg-core` shares one `DiGraph`
// across `std::thread::scope` workers and hands each worker private distance
// / search-space buffers. Every one of these types is plain owned data
// (`Vec`s, integers, hash maps keyed by ids) with no interior mutability, so
// `Send + Sync` holds structurally; these compile-time asserts turn that
// architectural assumption into a build error if a future refactor ever
// introduces an `Rc`, `RefCell` or raw-pointer cache into the query inputs.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DiGraph>();
    assert_send_sync::<GraphBuilder>();
    assert_send_sync::<EdgeSubgraph>();
    assert_send_sync::<DistanceIndex>();
    assert_send_sync::<FlatDistances>();
    assert_send_sync::<MsBfsEngine>();
    assert_send_sync::<MsBfsEngine<Lanes128>>();
    assert_send_sync::<MsBfsEngine<Lanes256>>();
    assert_send_sync::<SearchSpace>();
    assert_send_sync::<SpaceScratch>();
    assert_send_sync::<VersionedGraph>();
};
