//! Compressed sparse row (CSR) storage for immutable directed graphs.
//!
//! [`DiGraph`] stores both the out-adjacency and the in-adjacency of a
//! directed graph. The EVE algorithm needs both: forward propagation and
//! forward BFS walk out-edges, backward propagation / backward BFS walk
//! in-edges (equivalently, the out-edges of the reversed graph `Gʳ`). Keeping
//! both directions inside one structure avoids materialising a second graph
//! per query.
//!
//! Vertices are dense `u32` identifiers `0..n`. Edges are identified by their
//! position in the out-adjacency array ([`EdgeId`]), which gives every edge a
//! stable dense id that the edge-labeling phase of EVE uses for its per-edge
//! label array. Adjacency lists are sorted, so `has_edge`/`edge_id` are
//! `O(log d)` binary searches and neighbourhood intersections stream in
//! order.

use crate::builder::GraphBuilder;
use crate::delta::{validate_deltas, DeltaError, DeltaOp, EdgeDelta};

/// Dense vertex identifier (`0..vertex_count`).
pub type VertexId = u32;

/// Dense edge identifier: the position of the edge in out-adjacency order.
pub type EdgeId = u32;

/// One adjacency direction of a delta overlay: the handful of vertices whose
/// rows differ from the base CSR each own a full replacement row (merged,
/// sorted, deduplicated — byte-identical to what a from-scratch rebuild
/// would produce for that vertex).
#[derive(Clone, PartialEq, Eq)]
struct PatchSide {
    /// Per-vertex slot into `rows`; `u32::MAX` means "row unpatched".
    idx: Vec<u32>,
    /// Replacement adjacency rows for the patched vertices.
    rows: Vec<Vec<VertexId>>,
}

impl PatchSide {
    fn new(n: usize) -> Self {
        PatchSide {
            idx: vec![u32::MAX; n],
            rows: Vec::new(),
        }
    }

    /// The replacement row for `v`, if `v` is patched.
    #[inline]
    fn row(&self, v: VertexId) -> Option<&[VertexId]> {
        let slot = self.idx[v as usize];
        if slot == u32::MAX {
            None
        } else {
            Some(&self.rows[slot as usize])
        }
    }

    /// The mutable replacement row for `v`, materialising it from `base` on
    /// first touch.
    fn row_mut(&mut self, v: VertexId, base: &[VertexId]) -> &mut Vec<VertexId> {
        let mut slot = self.idx[v as usize];
        if slot == u32::MAX {
            slot = self.rows.len() as u32;
            self.idx[v as usize] = slot;
            self.rows.push(base.to_vec());
        }
        &mut self.rows[slot as usize]
    }

    fn memory_bytes(&self) -> usize {
        self.idx.len() * std::mem::size_of::<u32>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
    }
}

/// The delta overlay of a [`DiGraph`]: patched rows for both adjacency
/// directions plus the effective edge count of the merged graph.
#[derive(Clone, PartialEq, Eq)]
struct Overlay {
    out: PatchSide,
    inc: PatchSide,
    edge_count: usize,
}

/// An immutable directed graph in CSR form with out- and in-adjacency.
///
/// "Immutable" describes the base CSR arrays; [`DiGraph::apply_delta`] layers
/// an **overlay** of patched adjacency rows on top without rebuilding them.
/// Every traversal accessor (`neighbors`, `edges`, degrees, `has_edge`, …)
/// merges base + overlay at lookup time, so engines observe exactly the
/// graph a from-scratch rebuild would produce; [`DiGraph::compact`] folds
/// the overlay into fresh CSR arrays. `PartialEq` is representational (an
/// overlaid graph and its compacted twin compare unequal) — compare
/// [`DiGraph::edges`] for semantic equality.
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    /// `out_offsets[u]..out_offsets[u+1]` indexes `out_targets` for vertex `u`.
    out_offsets: Vec<u32>,
    /// Concatenated, per-vertex-sorted out-neighbour lists.
    out_targets: Vec<VertexId>,
    /// `in_offsets[v]..in_offsets[v+1]` indexes `in_sources` for vertex `v`.
    in_offsets: Vec<u32>,
    /// Concatenated, per-vertex-sorted in-neighbour lists.
    in_sources: Vec<VertexId>,
    /// Patched rows from applied [`EdgeDelta`] batches, if any.
    overlay: Option<Box<Overlay>>,
}

impl std::fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiGraph")
            .field("vertices", &self.vertex_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl DiGraph {
    /// Builds a graph from raw CSR arrays. Intended for use by
    /// [`GraphBuilder`]; invariants (sorted adjacency, consistent offsets)
    /// must already hold.
    pub(crate) fn from_csr_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<VertexId>,
        in_offsets: Vec<u32>,
        in_sources: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            overlay: None,
        }
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Convenience constructor: builds a graph with `n` vertices from an edge
    /// iterator, deduplicating parallel edges and dropping self-loops
    /// (self-loops can never participate in a simple path).
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges (overlay-aware).
    #[inline]
    pub fn edge_count(&self) -> usize {
        match &self.overlay {
            Some(o) => o.edge_count,
            None => self.out_targets.len(),
        }
    }

    /// `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edge_count() == 0
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// Out-neighbours of `u` in the *base* CSR, ignoring any overlay.
    #[inline]
    fn base_out(&self, u: VertexId) -> &[VertexId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `v` in the *base* CSR, ignoring any overlay.
    #[inline]
    fn base_in(&self, v: VertexId) -> &[VertexId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-neighbours of `u`, sorted ascending (overlay-aware: a patched row
    /// shadows the base CSR, still a plain slice fetch plus one branch).
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        if let Some(o) = &self.overlay {
            if let Some(row) = o.out.row(u) {
                return row;
            }
        }
        self.base_out(u)
    }

    /// In-neighbours of `v`, sorted ascending (overlay-aware).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        if let Some(o) = &self.overlay {
            if let Some(row) = o.inc.row(v) {
                return row;
            }
        }
        self.base_in(v)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.in_degree(v) + self.out_degree(v)
    }

    /// Neighbours in a chosen direction: out-neighbours for
    /// [`Direction::Forward`], in-neighbours for [`Direction::Backward`].
    #[inline]
    pub fn neighbors(&self, v: VertexId, dir: Direction) -> &[VertexId] {
        match dir {
            Direction::Forward => self.out_neighbors(v),
            Direction::Backward => self.in_neighbors(v),
        }
    }

    /// `true` if the directed edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Dense id of edge `(u, v)` if present.
    ///
    /// Dense edge ids index the **base** CSR; on an overlaid graph call
    /// [`DiGraph::compact`] first to re-densify them.
    #[inline]
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        debug_assert!(self.overlay.is_none(), "edge ids index the base CSR");
        let base = self.out_offsets[u as usize];
        self.base_out(u)
            .binary_search(&v)
            .ok()
            .map(|pos| base + pos as EdgeId)
    }

    /// Endpoints `(u, v)` of the edge with dense id `e` (base CSR; see
    /// [`DiGraph::edge_id`]).
    ///
    /// `O(log n)` — the source vertex is located by binary search over the
    /// offset array.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        debug_assert!(self.overlay.is_none(), "edge ids index the base CSR");
        debug_assert!((e as usize) < self.out_targets.len());
        let v = self.out_targets[e as usize];
        // partition_point returns the first u with offset > e, so source = u-1.
        let u = self.out_offsets.partition_point(|&off| off <= e) - 1;
        (u as VertexId, v)
    }

    /// Iterator over `(EdgeId, source, target)` for the out-edges of `u`
    /// (base CSR; see [`DiGraph::edge_id`]).
    #[inline]
    pub fn out_edges(&self, u: VertexId) -> impl Iterator<Item = (EdgeId, VertexId)> + '_ {
        debug_assert!(self.overlay.is_none(), "edge ids index the base CSR");
        let base = self.out_offsets[u as usize];
        self.base_out(u)
            .iter()
            .enumerate()
            .map(move |(i, &v)| (base + i as EdgeId, v))
    }

    /// Iterator over all edges as `(source, target)` pairs in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterator over all edges as `(EdgeId, source, target)` triples
    /// (base CSR; see [`DiGraph::edge_id`]).
    pub fn edges_with_ids(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        debug_assert!(self.overlay.is_none(), "edge ids index the base CSR");
        self.vertices().flat_map(move |u| {
            let base = self.out_offsets[u as usize];
            self.base_out(u)
                .iter()
                .enumerate()
                .map(move |(i, &v)| (base + i as EdgeId, u, v))
        })
    }

    /// Returns the reversed graph `Gʳ` (every edge flipped). An overlay is
    /// carried over with its patch sides swapped, so the reversal of an
    /// overlaid graph is the overlaid reversal.
    ///
    /// Note that most algorithms in this workspace do not need this: backward
    /// traversal can use [`DiGraph::in_neighbors`] directly. The method is
    /// mainly useful for tests and for feeding forward-only third-party code.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            overlay: self.overlay.as_ref().map(|o| {
                Box::new(Overlay {
                    out: o.inc.clone(),
                    inc: o.out.clone(),
                    edge_count: o.edge_count,
                })
            }),
        }
    }

    /// Maximum of in- and out-degree over all vertices (`d_max` in the paper).
    pub fn max_degree(&self) -> usize {
        self.vertices()
            .map(|v| self.out_degree(v).max(self.in_degree(v)))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree (`d_avg = |E| / |V|`).
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Approximate heap footprint of the CSR arrays (plus any overlay) in
    /// bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<u32>()
            + (self.out_targets.len() + self.in_sources.len()) * std::mem::size_of::<VertexId>()
            + self
                .overlay
                .as_ref()
                .map_or(0, |o| o.out.memory_bytes() + o.inc.memory_bytes())
    }

    /// Applies a batch of edge deltas as an overlay patch, returning how many
    /// deltas actually changed the graph (adding a present edge or removing
    /// an absent one is an idempotent no-op). The batch is validated as a
    /// unit **before** any mutation — on `Err` the graph is untouched.
    ///
    /// After the call every traversal accessor observes the merged graph,
    /// edge-for-edge identical to `DiGraph::from_edges` over the mutated
    /// edge list; only the touched adjacency rows were copied. Dense edge
    /// ids are not maintained by the overlay — [`DiGraph::compact`]
    /// re-densifies them.
    pub fn apply_delta(&mut self, deltas: &[EdgeDelta]) -> Result<usize, DeltaError> {
        validate_deltas(self, deltas)?;
        if deltas.is_empty() {
            return Ok(0);
        }
        let n = self.vertex_count();
        let mut overlay = self.overlay.take().unwrap_or_else(|| {
            Box::new(Overlay {
                out: PatchSide::new(n),
                inc: PatchSide::new(n),
                edge_count: self.out_targets.len(),
            })
        });
        let mut applied = 0usize;
        for d in deltas {
            let present = match overlay.out.row(d.source) {
                Some(row) => row.binary_search(&d.target).is_ok(),
                None => self.base_out(d.source).binary_search(&d.target).is_ok(),
            };
            match d.op {
                DeltaOp::Add if !present => {
                    let row = overlay.out.row_mut(d.source, self.base_out(d.source));
                    if let Err(pos) = row.binary_search(&d.target) {
                        row.insert(pos, d.target);
                    }
                    let row = overlay.inc.row_mut(d.target, self.base_in(d.target));
                    if let Err(pos) = row.binary_search(&d.source) {
                        row.insert(pos, d.source);
                    }
                    overlay.edge_count += 1;
                    applied += 1;
                }
                DeltaOp::Remove if present => {
                    let row = overlay.out.row_mut(d.source, self.base_out(d.source));
                    if let Ok(pos) = row.binary_search(&d.target) {
                        row.remove(pos);
                    }
                    let row = overlay.inc.row_mut(d.target, self.base_in(d.target));
                    if let Ok(pos) = row.binary_search(&d.source) {
                        row.remove(pos);
                    }
                    overlay.edge_count -= 1;
                    applied += 1;
                }
                _ => {}
            }
        }
        self.overlay = Some(overlay);
        Ok(applied)
    }

    /// `true` when delta patches are currently overlaid on the base CSR.
    #[inline]
    pub fn is_overlaid(&self) -> bool {
        self.overlay.is_some()
    }

    /// Number of patched adjacency rows (both directions) in the overlay —
    /// the measure [`crate::VersionedGraph`] compares against its compaction
    /// threshold.
    pub fn overlay_rows(&self) -> usize {
        self.overlay
            .as_ref()
            .map_or(0, |o| o.out.rows.len() + o.inc.rows.len())
    }

    /// Folds the overlay into fresh CSR arrays, restoring dense edge ids.
    /// Returns `false` (and does nothing) when no overlay is present. The
    /// merged structure is unchanged, so answers (and cache entries keyed by
    /// the owning snapshot's version) remain valid across a compaction.
    pub fn compact(&mut self) -> bool {
        let Some(o) = self.overlay.take() else {
            return false;
        };
        let n = self.vertex_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(o.edge_count);
        out_offsets.push(0u32);
        for u in 0..n as VertexId {
            let row = o.out.row(u).unwrap_or_else(|| self.base_out(u));
            out_targets.extend_from_slice(row);
            out_offsets.push(out_targets.len() as u32);
        }
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(o.edge_count);
        in_offsets.push(0u32);
        for v in 0..n as VertexId {
            let row = o.inc.row(v).unwrap_or_else(|| self.base_in(v));
            in_sources.extend_from_slice(row);
            in_offsets.push(in_sources.len() as u32);
        }
        debug_assert_eq!(out_targets.len(), o.edge_count);
        debug_assert_eq!(in_sources.len(), o.edge_count);
        self.out_offsets = out_offsets;
        self.out_targets = out_targets;
        self.in_offsets = in_offsets;
        self.in_sources = in_sources;
        true
    }
}

/// Traversal direction selector used by BFS and propagation routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges in their natural orientation (walk out-neighbours).
    Forward,
    /// Follow edges against their orientation (walk in-neighbours).
    Backward,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Figure 1(a) in the paper, with the vertex
    /// naming s=0, a=1, c=2, t=3, h=4, b=5, i=6, j=7.
    pub(crate) fn figure1_graph() -> DiGraph {
        DiGraph::from_edges(
            8,
            [
                (0, 1), // s -> a
                (0, 2), // s -> c
                (1, 2), // a -> c
                (1, 4), // a -> h
                (1, 6), // a -> i
                (2, 3), // c -> t
                (2, 5), // c -> b
                (4, 5), // h -> b
                (5, 3), // b -> t
                (5, 1), // b -> a
                (5, 7), // b -> j
                (6, 7), // i -> j
                (7, 4), // j -> h
            ],
        )
    }

    #[test]
    fn counts_and_degrees() {
        let g = figure1_graph();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 13);
        assert_eq!(g.out_degree(1), 3); // a -> {c, h, i}
        assert_eq!(g.in_degree(3), 2); // t <- {c, b}
        assert_eq!(g.degree(5), 5); // b: in {c, h}, out {t, a, j}
        assert!(g.max_degree() >= 3);
        assert!((g.avg_degree() - 13.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_is_sorted_and_queriable() {
        let g = figure1_graph();
        assert_eq!(g.out_neighbors(1), &[2, 4, 6]);
        assert_eq!(g.in_neighbors(5), &[2, 4]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
        assert!(g.edge_id(0, 2).is_some());
        assert_eq!(g.edge_id(2, 0), None);
    }

    #[test]
    fn edge_ids_round_trip() {
        let g = figure1_graph();
        for (e, u, v) in g.edges_with_ids() {
            assert_eq!(g.edge_endpoints(e), (u, v));
            assert_eq!(g.edge_id(u, v), Some(e));
        }
        let ids: Vec<EdgeId> = g.edges_with_ids().map(|(e, _, _)| e).collect();
        let expected: Vec<EdgeId> = (0..g.edge_count() as EdgeId).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn reversal_flips_every_edge() {
        let g = figure1_graph();
        let r = g.reversed();
        assert_eq!(r.vertex_count(), g.vertex_count());
        assert_eq!(r.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn empty_graph_behaves() {
        let g = DiGraph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.out_neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 1), (1, 1), (1, 2), (1, 2), (2, 0)]);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn directions_select_the_right_adjacency() {
        let g = figure1_graph();
        assert_eq!(g.neighbors(1, Direction::Forward), g.out_neighbors(1));
        assert_eq!(g.neighbors(1, Direction::Backward), g.in_neighbors(1));
        assert_eq!(Direction::Forward.flipped(), Direction::Backward);
        assert_eq!(Direction::Backward.flipped(), Direction::Forward);
    }

    #[test]
    fn memory_estimate_is_positive_for_nonempty_graphs() {
        let g = figure1_graph();
        assert!(g.memory_bytes() > 0);
        assert!(g.memory_bytes() >= g.edge_count() * 8);
    }

    /// The merged view after `apply_delta` must be edge-for-edge identical to
    /// a from-scratch rebuild, before and after `compact()`.
    #[test]
    fn overlay_matches_rebuild_and_compacts() {
        let mut g = figure1_graph();
        let deltas = [
            EdgeDelta::add(3, 0),    // new edge t -> s
            EdgeDelta::add(0, 1),    // already present: no-op
            EdgeDelta::remove(5, 1), // drop b -> a
            EdgeDelta::remove(6, 0), // absent: no-op
        ];
        let applied = g.apply_delta(&deltas).unwrap();
        assert_eq!(applied, 2);
        assert!(g.is_overlaid());
        assert!(g.overlay_rows() > 0);

        let mut edges: Vec<_> = figure1_graph().edges().collect();
        edges.push((3, 0));
        edges.retain(|&e| e != (5, 1));
        let rebuilt = DiGraph::from_edges(8, edges);
        assert_eq!(g.edge_count(), rebuilt.edge_count());
        let overlay_edges: Vec<_> = g.edges().collect();
        let rebuilt_edges: Vec<_> = rebuilt.edges().collect();
        assert_eq!(overlay_edges, rebuilt_edges);
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), rebuilt.out_neighbors(v), "out {v}");
            assert_eq!(g.in_neighbors(v), rebuilt.in_neighbors(v), "in {v}");
        }
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(5, 1));

        // Folding the overlay yields a bit-identical CSR.
        assert!(g.compact());
        assert!(!g.is_overlaid());
        assert_eq!(g, rebuilt);
        assert!(!g.compact(), "no overlay left to fold");
    }

    #[test]
    fn overlay_rejects_invalid_deltas_atomically() {
        let mut g = figure1_graph();
        let before: Vec<_> = g.edges().collect();
        assert!(g
            .apply_delta(&[EdgeDelta::add(0, 3), EdgeDelta::add(0, 99)])
            .is_err());
        assert!(g.apply_delta(&[EdgeDelta::add(2, 2)]).is_err());
        assert!(
            !g.is_overlaid(),
            "rejected batches leave the graph untouched"
        );
        assert_eq!(g.edges().collect::<Vec<_>>(), before);
        // An empty batch is accepted and does nothing.
        assert_eq!(g.apply_delta(&[]).unwrap(), 0);
        assert!(!g.is_overlaid());
    }

    #[test]
    fn overlaid_reversal_flips_patched_rows() {
        let mut g = figure1_graph();
        g.apply_delta(&[EdgeDelta::add(3, 0), EdgeDelta::remove(2, 5)])
            .unwrap();
        let r = g.reversed();
        assert_eq!(r.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        assert!(r.has_edge(0, 3));
        assert!(!r.has_edge(5, 2));
    }

    #[test]
    fn removing_then_readding_restores_the_row() {
        let mut g = figure1_graph();
        g.apply_delta(&[EdgeDelta::remove(1, 4)]).unwrap();
        assert!(!g.has_edge(1, 4));
        g.apply_delta(&[EdgeDelta::add(1, 4)]).unwrap();
        assert_eq!(g.out_neighbors(1), figure1_graph().out_neighbors(1));
        assert_eq!(g.edge_count(), 13);
    }
}
