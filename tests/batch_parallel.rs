//! Differential property tests for the parallel [`BatchExecutor`].
//!
//! The contract under test: at every thread count, `BatchExecutor::run`
//! produces a result vector *bit-identical* to answering each query
//! sequentially on a fresh workspace — same edges per `Ok` slot, same
//! `QueryError` per `Err` slot, in input order. Batches deliberately mix
//! hop constraints, shuffled endpoints, huge clamped `k`s and malformed
//! queries so error slots land on arbitrary workers mid-chunk.

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{BatchExecutor, Eve, LaneWidth, Query};
use hop_spg::graph::{DiGraph, FrontierMode};
use hop_spg::workloads::{inject_invalid, mixed_k_queries, shared_endpoint_queries};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Strategy: a small random digraph plus a raw query batch that includes
/// invalid shapes (s == t, endpoints past the vertex range, k == 0) and
/// occasionally a clamp-stressing huge k.
fn graph_and_batch() -> impl Strategy<Value = (DiGraph, Vec<Query>)> {
    (4usize..16).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        // Endpoints range two past the vertex count and k may be 0: both
        // invalid shapes must surface as per-slot errors, not disturbances.
        let queries = vec((0..n as u32 + 2, 0..n as u32 + 2, 0u32..10), 1..24);
        (edges, queries).prop_map(move |(edges, qs)| {
            let g = DiGraph::from_edges(n, edges);
            let batch: Vec<Query> = qs
                .into_iter()
                .enumerate()
                .map(|(i, (s, t, k))| {
                    // Every seventh query stresses the entry-point clamp.
                    let k = if i % 7 == 3 { u32::MAX - k } else { k };
                    Query::new(s, t, k)
                })
                .collect();
            (g, batch)
        })
    })
}

/// Sequential ground truth: a fresh workspace per query.
fn sequential_fresh(eve: &Eve<'_>, batch: &[Query]) -> Vec<Result<Vec<(u32, u32)>, String>> {
    batch
        .iter()
        .map(|&q| {
            eve.query(q)
                .map(|spg| spg.edges().to_vec())
                .map_err(|e| e.to_string())
        })
        .collect()
}

fn assert_matches_sequential(
    eve: &Eve<'_>,
    batch: &[Query],
    expected: &[Result<Vec<(u32, u32)>, String>],
    threads: usize,
) -> Result<(), String> {
    let outcome = BatchExecutor::new(threads).run_detailed(eve, batch);
    prop_assert_eq!(outcome.results.len(), expected.len());
    let mut errors = 0usize;
    for (i, (got, exp)) in outcome.results.iter().zip(expected).enumerate() {
        match (got, exp) {
            (Ok(spg), Ok(edges)) => {
                prop_assert!(
                    spg.edges() == edges.as_slice(),
                    "slot {i} threads {threads}: {:?} != {:?}",
                    spg.edges(),
                    edges
                );
            }
            (Err(e), Err(msg)) => {
                errors += 1;
                prop_assert!(
                    &e.to_string() == msg,
                    "slot {i} threads {threads}: {e} != {msg}"
                );
            }
            _ => prop_assert!(false, "slot {i} threads {threads}: Ok/Err mismatch"),
        }
    }
    prop_assert_eq!(outcome.stats.errors, errors);
    prop_assert_eq!(outcome.stats.queries(), batch.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The executor is bit-identical to sequential fresh-workspace queries
    /// at 1, 2, 4 and 8 threads, including error slots.
    #[test]
    fn parallel_batches_match_sequential((g, batch) in graph_and_batch()) {
        let eve = Eve::with_defaults(&g);
        let expected = sequential_fresh(&eve, &batch);
        for threads in THREAD_COUNTS {
            assert_matches_sequential(&eve, &batch, &expected, threads)?;
        }
    }

    /// `Eve::query_batch` (one reused workspace, sequential) agrees with the
    /// executor slot-for-slot as well — the two public batch entry points
    /// can never drift apart.
    #[test]
    fn query_batch_agrees_with_executor((g, batch) in graph_and_batch()) {
        let eve = Eve::with_defaults(&g);
        let sequential = eve.query_batch(&batch);
        let parallel = BatchExecutor::new(4).run(&eve, &batch);
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            match (s, p) {
                (Ok(a), Ok(b)) => prop_assert!(a.edges() == b.edges(), "slot {i} differs"),
                (Err(a), Err(b)) => prop_assert!(a == b, "slot {i} differs"),
                _ => prop_assert!(false, "slot {i}: Ok/Err mismatch"),
            }
        }
    }

    /// Fraud-ring-shaped batches (few sources × few targets, so cohorts are
    /// dense with duplicate `(s, t)` pairs at mixed `k` including huge
    /// clamped ones and invalid slots) stay bit-identical to sequential
    /// fresh-workspace queries at every thread count and under every
    /// Phase-1 frontier mode, with and without sharing.
    #[test]
    fn shared_endpoint_cohorts_match_sequential(
        (g, raw) in (6usize..16).prop_flat_map(|n| {
            let edges = vec((0..n as u32, 0..n as u32), n..(5 * n));
            // Endpoints are drawn from 3-vertex pools so pairs repeat a lot;
            // k = 0 slots are invalid, every ninth k is clamp-stressing.
            let queries = vec((0u32..3, 0u32..3, 0u32..12), 2..40);
            (edges, queries).prop_map(move |(edges, qs)| {
                (DiGraph::from_edges(n, edges), (n, qs))
            })
        }),
    ) {
        let (n, qs) = raw;
        let src_pool = [0u32, 1, (n - 1) as u32];
        let dst_pool = [(n - 2) as u32, 2, 1];
        let batch: Vec<Query> = qs
            .into_iter()
            .enumerate()
            .map(|(i, (si, ti, k))| {
                let k = if i % 9 == 4 { u32::MAX - k } else { k };
                Query::new(src_pool[si as usize], dst_pool[ti as usize], k)
            })
            .collect();
        let eve = Eve::with_defaults(&g);
        let expected = sequential_fresh(&eve, &batch);
        for threads in THREAD_COUNTS {
            assert_matches_sequential(&eve, &batch, &expected, threads)?;
        }
        for mode in [FrontierMode::TopDownOnly, FrontierMode::BottomUpOnly] {
            let outcome = BatchExecutor::new(3)
                .phase1_mode(mode)
                .run_detailed(&eve, &batch);
            for (i, (got, exp)) in outcome.results.iter().zip(&expected).enumerate() {
                match (got, exp) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(a.edges() == b.as_slice(), "slot {i} mode {mode:?}")
                    }
                    (Err(a), Err(b)) => {
                        prop_assert!(&a.to_string() == b, "slot {i} mode {mode:?}")
                    }
                    _ => prop_assert!(false, "slot {i} mode {mode:?}: Ok/Err mismatch"),
                }
            }
            // Every valid query was either cohort-shared or a singleton
            // fallback, and lanes never exceed the distinct-pair count per
            // cohort (a pair recurring in several member-capped cohorts is
            // traversed once per cohort).
            let valid = batch.iter().filter(|q| q.validate(&g).is_ok()).count();
            let p1 = &outcome.stats.phase1;
            prop_assert!(p1.phase1_shared <= valid);
            prop_assert!(
                p1.distinct_endpoints <= 9 * p1.cohorts.max(1),
                "at most 3 × 3 pairs per cohort"
            );
            if p1.phase1_shared > 0 {
                prop_assert!(p1.dedup_ratio().unwrap() >= 1.0);
            }
        }
        // Sharing off is the same answer, slot for slot.
        let legacy = BatchExecutor::new(2)
            .shared_phase1(false)
            .run_detailed(&eve, &batch);
        prop_assert_eq!(legacy.stats.phase1.phase1_shared, 0);
        for (i, (got, exp)) in legacy.results.iter().zip(&expected).enumerate() {
            match (got, exp) {
                (Ok(a), Ok(b)) => prop_assert!(a.edges() == b.as_slice(), "slot {i} legacy"),
                (Err(a), Err(b)) => prop_assert!(&a.to_string() == b, "slot {i} legacy"),
                _ => prop_assert!(false, "slot {i} legacy: Ok/Err mismatch"),
            }
        }
    }
}

/// Deterministic multi-cohort check, pinned to 64-lane cohorts (the
/// default 256-lane capacity would swallow the whole batch in one — the
/// `wide_cohorts_match_per_query_at_every_thread_count` test covers that
/// side): more than 64 distinct endpoint pairs forces the planner to split
/// cohorts, duplicate `(s, t, k)` entries and `u32::MAX` clamp aliases
/// land in the same lanes, and every slot stays bit-identical to the
/// sequential fresh-workspace answer at every thread count.
#[test]
fn multi_cohort_batches_with_duplicates_and_aliases() {
    // Deliberately tiny host graph: the u32::MAX aliases below clamp to
    // k = n − 1, and the verification phase's witness search over a dense
    // small world at that hop budget must stay cheap enough for CI — a
    // 24-vertex host still offers 552 ordered pairs, plenty to overflow a
    // 64-lane cohort.
    let g = hop_spg::graph::generators::gnm_random(24, 96, 99);
    let eve = Eve::with_defaults(&g);
    // ~80 distinct pairs from wide pools (forces ≥ 2 cohorts) plus a
    // fraud-ring block from narrow pools (dense dedup), duplicates and
    // clamp aliases of existing pairs, and invalid slots.
    let mut batch = mixed_k_queries(&g, 90, &[2, 4, 6], 0x00D1);
    batch.extend(shared_endpoint_queries(&g, 60, &[3, 6], 4, 4, 0x00D2));
    let dups: Vec<Query> = batch.iter().step_by(7).copied().collect();
    batch.extend(dups);
    let aliases: Vec<Query> = batch
        .iter()
        .step_by(11)
        .map(|q| Query::new(q.source, q.target, u32::MAX))
        .collect();
    batch.extend(aliases);
    let injected = inject_invalid(&mut batch, &g, 13);
    assert!(injected > 0);

    let expected: Vec<_> = batch.iter().map(|&q| eve.query(q)).collect();
    let mut distinct_pairs: Vec<(u32, u32)> = batch
        .iter()
        .filter(|q| q.validate(&g).is_ok())
        .map(|q| (q.source, q.target))
        .collect();
    distinct_pairs.sort_unstable();
    distinct_pairs.dedup();
    assert!(distinct_pairs.len() > 64, "the batch must span ≥ 2 cohorts");

    for threads in THREAD_COUNTS {
        let outcome = BatchExecutor::new(threads)
            .phase1_lanes(LaneWidth::W64)
            .run_detailed(&eve, &batch);
        assert_eq!(outcome.stats.errors, injected, "threads {threads}");
        let p1 = &outcome.stats.phase1;
        assert!(p1.cohorts >= 2, "threads {threads}: {} cohorts", p1.cohorts);
        assert!(p1.distinct_endpoints <= p1.phase1_shared);
        assert!(p1.traversal.total_edge_scans() > 0);
        for (i, (got, exp)) in outcome.results.iter().zip(&expected).enumerate() {
            match (got, exp) {
                (Ok(a), Ok(b)) => assert_eq!(a.edges(), b.edges(), "slot {i} threads {threads}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "slot {i} threads {threads}"),
                other => panic!("slot {i} threads {threads}: Ok/Err mismatch {other:?}"),
            }
        }
    }

    // Exact cohort accounting on the single-worker (uncapped) plan, where
    // lane overflow is the only reason to split cohorts.
    let solo = BatchExecutor::new(1)
        .phase1_lanes(LaneWidth::W64)
        .run_detailed(&eve, &batch)
        .stats;
    let p1 = &solo.phase1;
    assert!(p1.cohorts >= 2, "{} cohorts", p1.cohorts);
    // Only the final cohort can degenerate to a singleton fallback
    // (overflow-closed cohorts hold 64 lanes ≥ 2 members), so at most one
    // valid query escapes sharing.
    let valid = batch.len() - injected;
    assert!(p1.phase1_shared >= valid - 1 && p1.phase1_shared <= valid);
    // A pair recurring in two cohorts is traversed once per cohort, so
    // lanes can exceed the global distinct-pair count, but never the
    // shared-member count.
    assert!(p1.distinct_endpoints >= 64, "first cohort fills its lanes");
    assert!(p1.distinct_endpoints <= p1.phase1_shared);
    assert!(
        p1.dedup_ratio().unwrap() > 1.0,
        "duplicates must dedup: {:?}",
        p1.dedup_ratio()
    );

    // `Eve::query_batch` (sequential cohorts) agrees slot-for-slot too.
    let sequential = eve.query_batch(&batch);
    for (i, (s, e)) in sequential.iter().zip(&expected).enumerate() {
        match (s, e) {
            (Ok(a), Ok(b)) => assert_eq!(a.edges(), b.edges(), "slot {i} query_batch"),
            (Err(a), Err(b)) => assert_eq!(a, b, "slot {i} query_batch"),
            other => panic!("slot {i} query_batch: Ok/Err mismatch {other:?}"),
        }
    }
}

/// Deterministic large-batch check on a realistic graph: a 300-vertex gnm
/// batch with every fifth slot replaced by an invalid query, compared across
/// all thread counts and small chunk sizes (so chunk boundaries fall inside
/// error runs).
#[test]
fn large_mixed_batch_with_error_slots() {
    let g = hop_spg::graph::generators::gnm_random(300, 1500, 77);
    let eve = Eve::with_defaults(&g);
    let mut batch = mixed_k_queries(&g, 120, &[2, 4, 6, 8], 0xBA7C);
    let injected = inject_invalid(&mut batch, &g, 5);
    assert!(injected > 0);
    let expected: Vec<_> = batch.iter().map(|&q| eve.query(q)).collect();

    for threads in THREAD_COUNTS {
        for chunk in [0usize, 1, 3] {
            let mut executor = BatchExecutor::new(threads);
            if chunk > 0 {
                executor = executor.chunk_size(chunk);
            }
            let outcome = executor.run_detailed(&eve, &batch);
            assert_eq!(outcome.stats.errors, injected);
            for (i, (got, exp)) in outcome.results.iter().zip(&expected).enumerate() {
                match (got, exp) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a.edges(),
                        b.edges(),
                        "slot {i} threads {threads} chunk {chunk}"
                    ),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    other => panic!("slot {i}: Ok/Err mismatch {other:?}"),
                }
            }
        }
    }
}
