//! Differential property tests for the parallel [`BatchExecutor`].
//!
//! The contract under test: at every thread count, `BatchExecutor::run`
//! produces a result vector *bit-identical* to answering each query
//! sequentially on a fresh workspace — same edges per `Ok` slot, same
//! `QueryError` per `Err` slot, in input order. Batches deliberately mix
//! hop constraints, shuffled endpoints, huge clamped `k`s and malformed
//! queries so error slots land on arbitrary workers mid-chunk.

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{BatchExecutor, Eve, Query};
use hop_spg::graph::DiGraph;
use hop_spg::workloads::{inject_invalid, mixed_k_queries};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Strategy: a small random digraph plus a raw query batch that includes
/// invalid shapes (s == t, endpoints past the vertex range, k == 0) and
/// occasionally a clamp-stressing huge k.
fn graph_and_batch() -> impl Strategy<Value = (DiGraph, Vec<Query>)> {
    (4usize..16).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        // Endpoints range two past the vertex count and k may be 0: both
        // invalid shapes must surface as per-slot errors, not disturbances.
        let queries = vec((0..n as u32 + 2, 0..n as u32 + 2, 0u32..10), 1..24);
        (edges, queries).prop_map(move |(edges, qs)| {
            let g = DiGraph::from_edges(n, edges);
            let batch: Vec<Query> = qs
                .into_iter()
                .enumerate()
                .map(|(i, (s, t, k))| {
                    // Every seventh query stresses the entry-point clamp.
                    let k = if i % 7 == 3 { u32::MAX - k } else { k };
                    Query::new(s, t, k)
                })
                .collect();
            (g, batch)
        })
    })
}

/// Sequential ground truth: a fresh workspace per query.
fn sequential_fresh(eve: &Eve<'_>, batch: &[Query]) -> Vec<Result<Vec<(u32, u32)>, String>> {
    batch
        .iter()
        .map(|&q| {
            eve.query(q)
                .map(|spg| spg.edges().to_vec())
                .map_err(|e| e.to_string())
        })
        .collect()
}

fn assert_matches_sequential(
    eve: &Eve<'_>,
    batch: &[Query],
    expected: &[Result<Vec<(u32, u32)>, String>],
    threads: usize,
) -> Result<(), String> {
    let outcome = BatchExecutor::new(threads).run_detailed(eve, batch);
    prop_assert_eq!(outcome.results.len(), expected.len());
    let mut errors = 0usize;
    for (i, (got, exp)) in outcome.results.iter().zip(expected).enumerate() {
        match (got, exp) {
            (Ok(spg), Ok(edges)) => {
                prop_assert!(
                    spg.edges() == edges.as_slice(),
                    "slot {i} threads {threads}: {:?} != {:?}",
                    spg.edges(),
                    edges
                );
            }
            (Err(e), Err(msg)) => {
                errors += 1;
                prop_assert!(
                    &e.to_string() == msg,
                    "slot {i} threads {threads}: {e} != {msg}"
                );
            }
            _ => prop_assert!(false, "slot {i} threads {threads}: Ok/Err mismatch"),
        }
    }
    prop_assert_eq!(outcome.stats.errors, errors);
    prop_assert_eq!(outcome.stats.queries(), batch.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The executor is bit-identical to sequential fresh-workspace queries
    /// at 1, 2, 4 and 8 threads, including error slots.
    #[test]
    fn parallel_batches_match_sequential((g, batch) in graph_and_batch()) {
        let eve = Eve::with_defaults(&g);
        let expected = sequential_fresh(&eve, &batch);
        for threads in THREAD_COUNTS {
            assert_matches_sequential(&eve, &batch, &expected, threads)?;
        }
    }

    /// `Eve::query_batch` (one reused workspace, sequential) agrees with the
    /// executor slot-for-slot as well — the two public batch entry points
    /// can never drift apart.
    #[test]
    fn query_batch_agrees_with_executor((g, batch) in graph_and_batch()) {
        let eve = Eve::with_defaults(&g);
        let sequential = eve.query_batch(&batch);
        let parallel = BatchExecutor::new(4).run(&eve, &batch);
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            match (s, p) {
                (Ok(a), Ok(b)) => prop_assert!(a.edges() == b.edges(), "slot {i} differs"),
                (Err(a), Err(b)) => prop_assert!(a == b, "slot {i} differs"),
                _ => prop_assert!(false, "slot {i}: Ok/Err mismatch"),
            }
        }
    }
}

/// Deterministic large-batch check on a realistic graph: a 300-vertex gnm
/// batch with every fifth slot replaced by an invalid query, compared across
/// all thread counts and small chunk sizes (so chunk boundaries fall inside
/// error runs).
#[test]
fn large_mixed_batch_with_error_slots() {
    let g = hop_spg::graph::generators::gnm_random(300, 1500, 77);
    let eve = Eve::with_defaults(&g);
    let mut batch = mixed_k_queries(&g, 120, &[2, 4, 6, 8], 0xBA7C);
    let injected = inject_invalid(&mut batch, &g, 5);
    assert!(injected > 0);
    let expected: Vec<_> = batch.iter().map(|&q| eve.query(q)).collect();

    for threads in THREAD_COUNTS {
        for chunk in [0usize, 1, 3] {
            let mut executor = BatchExecutor::new(threads);
            if chunk > 0 {
                executor = executor.chunk_size(chunk);
            }
            let outcome = executor.run_detailed(&eve, &batch);
            assert_eq!(outcome.stats.errors, injected);
            for (i, (got, exp)) in outcome.results.iter().zip(&expected).enumerate() {
                match (got, exp) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a.edges(),
                        b.edges(),
                        "slot {i} threads {threads} chunk {chunk}"
                    ),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    other => panic!("slot {i}: Ok/Err mismatch {other:?}"),
                }
            }
        }
    }
}
