//! Property-based tests over random digraphs and queries (proptest).
//!
//! These complement the seeded integration tests with shrinking: if an
//! invariant breaks, proptest reduces the counterexample to a minimal graph.

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::baselines::{khsq_plus, spg_by_enumeration, EnumerationAlgorithm};
use hop_spg::eve::{Eve, EveConfig, Query};
use hop_spg::graph::{DiGraph, DistanceStrategy};

/// Strategy: a small random digraph plus a query on it.
fn graph_and_query() -> impl Strategy<Value = (DiGraph, Query)> {
    (4usize..14, 2u32..8).prop_flat_map(|(n, k)| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(3 * n));
        (edges, 0..n as u32, 0..n as u32).prop_filter_map(
            "source must differ from target",
            move |(edges, s, t)| {
                if s == t {
                    return None;
                }
                Some((DiGraph::from_edges(n, edges), Query::new(s, t, k)))
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fundamental correctness property: EVE equals the union of all
    /// enumerated simple paths.
    #[test]
    fn eve_equals_enumeration_union((g, q) in graph_and_query()) {
        let eve = Eve::with_defaults(&g);
        let spg = eve.query(q).unwrap();
        let expected = spg_by_enumeration(EnumerationAlgorithm::NaiveDfs, &g, q.source, q.target, q.k);
        prop_assert_eq!(spg.edges(), expected.edges());
    }

    /// All ablation configurations agree.
    #[test]
    fn naive_and_full_configurations_agree((g, q) in graph_and_query()) {
        let full = Eve::new(&g, EveConfig::full()).query(q).unwrap();
        let naive = Eve::new(&g, EveConfig::naive()).query(q).unwrap();
        let bi = Eve::new(
            &g,
            EveConfig {
                distance_strategy: DistanceStrategy::Bidirectional,
                forward_looking_pruning: true,
                search_ordering: false,
            },
        )
        .query(q)
        .unwrap();
        prop_assert_eq!(full.edges(), naive.edges());
        prop_assert_eq!(full.edges(), bi.edges());
    }

    /// The upper-bound graph contains the answer and is exact for k ≤ 4.
    #[test]
    fn upper_bound_soundness((g, q) in graph_and_query()) {
        let out = Eve::with_defaults(&g).query_detailed(q).unwrap();
        prop_assert!(out.spg.as_subgraph().is_subgraph_of(&out.upper_bound));
        if q.k <= 4 {
            prop_assert_eq!(out.upper_bound.edge_count(), out.spg.edge_count());
        }
    }

    /// `SPG_k ⊆ G^k_st` and the answer is monotone in k.
    #[test]
    fn containment_and_monotonicity((g, q) in graph_and_query()) {
        let eve = Eve::with_defaults(&g);
        let spg = eve.query(q).unwrap();
        let (gkst, _) = khsq_plus(&g, q.source, q.target, q.k);
        prop_assert!(spg.as_subgraph().is_subgraph_of(&gkst));

        let larger = eve.query(Query::new(q.source, q.target, q.k + 1)).unwrap();
        prop_assert!(spg.as_subgraph().is_subgraph_of(larger.as_subgraph()));
    }

    /// Baseline enumerators agree with each other on the edge union.
    #[test]
    fn baselines_agree_pairwise((g, q) in graph_and_query()) {
        let reference = spg_by_enumeration(EnumerationAlgorithm::NaiveDfs, &g, q.source, q.target, q.k);
        for alg in [
            EnumerationAlgorithm::PrunedDfs,
            EnumerationAlgorithm::BcDfs,
            EnumerationAlgorithm::Join,
            EnumerationAlgorithm::PathEnum,
        ] {
            let other = spg_by_enumeration(alg, &g, q.source, q.target, q.k);
            prop_assert_eq!(reference.edges(), other.edges());
        }
    }

    /// Every edge of the answer touches vertices that can reach / be reached
    /// from the query endpoints within the hop budget.
    #[test]
    fn answer_edges_lie_in_the_search_space((g, q) in graph_and_query()) {
        use hop_spg::graph::DistanceIndex;
        let spg = Eve::with_defaults(&g).query(q).unwrap();
        let idx = DistanceIndex::compute(&g, q.source, q.target, q.k, DistanceStrategy::Single);
        for &(u, v) in spg.edges() {
            prop_assert!(idx.edge_in_space(u, v), "edge ({u},{v}) outside search space");
        }
    }
}
