//! Workspace bootstrap sanity check: the Figure 1 running example must give
//! the same answer through every layer of the workspace — EVE (`spg-core`),
//! plain enumeration and KHSQ+-restricted enumeration (`spg-baselines`) —
//! when accessed through the `hop_spg` umbrella crate re-exports.

use std::collections::BTreeSet;

use hop_spg::baselines::{
    khsq_plus, spg_by_enumeration, spg_by_enumeration_on_gkst, EnumerationAlgorithm,
};
use hop_spg::eve::paper_example::{figure1_graph, names};
use hop_spg::eve::{Eve, EveConfig, Query};

fn edge_set(edges: &[(u32, u32)]) -> BTreeSet<(u32, u32)> {
    edges.iter().copied().collect()
}

#[test]
fn figure1_round_trips_through_eve_khsq_and_enumeration() {
    let g = figure1_graph();
    let query = Query::new(names::S, names::T, 4);

    // EVE, the paper's algorithm.
    let eve = Eve::new(&g, EveConfig::default());
    let spg = eve.query(query).expect("Figure 1 query is valid");
    assert_eq!(spg.edge_count(), 8, "Figure 1(c) has exactly 8 edges");

    // SPG_k by exhaustive enumeration, for every enumerator.
    for algorithm in [
        EnumerationAlgorithm::NaiveDfs,
        EnumerationAlgorithm::PrunedDfs,
        EnumerationAlgorithm::BcDfs,
        EnumerationAlgorithm::Join,
        EnumerationAlgorithm::PathEnum,
    ] {
        let enumerated = spg_by_enumeration(algorithm, &g, names::S, names::T, 4);
        assert_eq!(
            edge_set(spg.edges()),
            edge_set(enumerated.edges()),
            "enumeration via {algorithm:?} must match EVE"
        );

        // The same enumeration restricted to the KHSQ+ search space G^k_st.
        let on_gkst = spg_by_enumeration_on_gkst(algorithm, &g, names::S, names::T, 4);
        assert_eq!(
            edge_set(spg.edges()),
            edge_set(on_gkst.edges()),
            "KHSQ+-restricted enumeration via {algorithm:?} must match EVE"
        );
    }

    // The KHSQ+ subgraph G^k_st is a sound over-approximation of the answer.
    let (gkst, _) = khsq_plus(&g, names::S, names::T, 4);
    assert!(
        spg.as_subgraph().is_subgraph_of(&gkst),
        "SPG_k must be contained in G^k_st"
    );
    assert!(
        gkst.edge_count() >= spg.edge_count(),
        "G^k_st can only be larger than SPG_k"
    );
}

#[test]
fn figure1_answer_is_monotone_in_k() {
    let g = figure1_graph();
    let eve = Eve::new(&g, EveConfig::default());
    let mut previous = 0usize;
    for k in 2..=8 {
        let spg = eve
            .query(Query::new(names::S, names::T, k))
            .expect("valid query");
        assert!(
            spg.edge_count() >= previous,
            "SPG_k edge count must be monotone in k (k={k})"
        );
        previous = spg.edge_count();
    }
    // At k = 4 the paper's running example is exactly Figure 1(c).
    let fig1c = eve.query(Query::new(names::S, names::T, 4)).expect("valid");
    assert_eq!(fig1c.edge_count(), 8);
}
