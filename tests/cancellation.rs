//! Cooperative cancellation: deadlines, work budgets, and workspace
//! reusability after a mid-flight kill.
//!
//! Three contracts:
//!
//! * **Deadlines are enforced promptly.** On an adversarial graph whose
//!   query would run far past the budget, `query_budgeted` returns
//!   [`QueryError::DeadlineExceeded`] within about twice the budget — the
//!   poll-at-boundaries design trades a bounded overshoot for zero atomic
//!   traffic in the inner loops.
//! * **Work budgets are deterministic.** The budget is charged with the
//!   engine's own work counters, so the same (query, limit) pair trips at
//!   the same boundary every run — or succeeds bit-identically when the
//!   limit is generous.
//! * **Cancellation leaves no residue.** A workspace whose query was killed
//!   at an *arbitrary* point answers the next query bit-identically to a
//!   fresh workspace (the property-test mirror of `workspace_reuse.rs`).

use std::time::{Duration, Instant};

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{Eve, Query, QueryError, QueryWorkspace};
use hop_spg::graph::generators::gnm_random;
use hop_spg::graph::{DiGraph, QueryBudget};

/// Dense enough that a deep-k query meanders for a long time in debug
/// builds, which is what the tier-1 suite runs.
fn adversarial_graph() -> DiGraph {
    gnm_random(1500, 45_000, 0xDEAD)
}

#[test]
fn deadlines_are_enforced_within_twice_the_budget() {
    let graph = adversarial_graph();
    let eve = Eve::with_defaults(&graph);
    let mut ws = QueryWorkspace::new();
    let budget_ms = 150;

    let start = Instant::now();
    let budget = QueryBudget::with_deadline(start + Duration::from_millis(budget_ms));
    let result = eve.query_budgeted(&mut ws, Query::new(0, 1, 10), &budget);
    let elapsed = start.elapsed();

    assert_eq!(
        result.map(|spg| spg.edge_count()),
        Err(QueryError::DeadlineExceeded),
        "the adversarial query must be far slower than the {budget_ms}ms budget \
         (if it finished, grow the graph)"
    );
    // "Within ~2x the budget": the boundary-poll granularity bounds the
    // overshoot. A small absolute allowance absorbs scheduler noise on
    // loaded single-vCPU CI runners.
    let bound = Duration::from_millis(2 * budget_ms + 100);
    assert!(
        elapsed < bound,
        "cancelled after {elapsed:?}, want < {bound:?}"
    );
}

#[test]
fn an_expired_deadline_cancels_before_any_phase() {
    let graph = adversarial_graph();
    let eve = Eve::with_defaults(&graph);
    let mut ws = QueryWorkspace::new();

    let budget = QueryBudget::with_deadline(Instant::now());
    let start = Instant::now();
    let result = eve.query_budgeted(&mut ws, Query::new(0, 1, 10), &budget);
    assert_eq!(result.err(), Some(QueryError::DeadlineExceeded));
    assert!(
        start.elapsed() < Duration::from_millis(100),
        "an already-dead query must not pay for a traversal"
    );
}

#[test]
fn work_budgets_trip_deterministically_and_leave_answers_intact() {
    let graph = gnm_random(200, 1600, 7);
    let eve = Eve::with_defaults(&graph);
    let query = Query::new(0, 7, 6);
    let reference = eve.query(query).expect("baseline answer");

    // Find a limit that actually trips (1 certainly does: validation is
    // free but the first BFS level is not).
    let mut ws = QueryWorkspace::new();
    let first = eve.query_budgeted(&mut ws, query, &QueryBudget::with_work_limit(1));
    assert_eq!(first.err(), Some(QueryError::BudgetExceeded));

    // Same query, same limit, fresh workspace: the identical outcome —
    // work charging uses engine counters, not wall clock.
    let mut ws2 = QueryWorkspace::new();
    let second = eve.query_budgeted(&mut ws2, query, &QueryBudget::with_work_limit(1));
    assert_eq!(second.err(), Some(QueryError::BudgetExceeded));

    // A generous limit changes nothing about the answer.
    let roomy = eve
        .query_budgeted(&mut ws, query, &QueryBudget::with_work_limit(u64::MAX))
        .expect("generous budget");
    assert_eq!(roomy.edges(), reference.edges());

    // And both killed workspaces answer the next query bit-identically.
    for ws in [&mut ws, &mut ws2] {
        let after = eve.query_with(ws, query).expect("post-kill query");
        assert_eq!(after.edges(), reference.edges());
    }
}

/// Strategy: a small random digraph, a query batch, and a kill point
/// (work limit) per query.
fn graph_and_killed_batch() -> impl Strategy<Value = (DiGraph, Vec<(Query, u64)>)> {
    (4usize..16).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        let queries = vec((0..n as u32, 0..n as u32, 1u32..9, 0u64..5_000), 1..10);
        (edges, queries).prop_map(move |(edges, qs)| {
            let g = DiGraph::from_edges(n, edges);
            let batch: Vec<(Query, u64)> = qs
                .into_iter()
                .filter(|&(s, t, _, _)| s != t)
                .map(|(s, t, k, limit)| (Query::new(s, t, k), limit))
                .collect();
            (g, batch)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: a query killed at an arbitrary point leaves the reused
    /// workspace producing bit-identical answers on the next query.
    #[test]
    fn a_killed_query_leaves_the_workspace_bit_clean(
        (g, batch) in graph_and_killed_batch()
    ) {
        let eve = Eve::with_defaults(&g);
        let mut ws = QueryWorkspace::new();
        for &(q, limit) in &batch {
            // Maybe-kill: tiny limits die mid-phase, generous ones finish.
            let killed = eve.query_budgeted(&mut ws, q, &QueryBudget::with_work_limit(limit));
            if let Ok(ref spg) = killed {
                let fresh = eve.query(q).unwrap();
                // A budget that does not trip must not perturb the answer.
                prop_assert_eq!(spg.edges(), fresh.edges());
            }
            // The very next unlimited query on the same workspace matches a
            // fresh workspace bit for bit.
            let warm = eve.query_with(&mut ws, q).unwrap();
            let fresh = eve.query(q).unwrap();
            prop_assert_eq!(warm.edges(), fresh.edges());
            prop_assert_eq!(
                warm.stats().upper_bound_edges,
                fresh.stats().upper_bound_edges
            );
        }
    }

    /// Work-limited cancellation is deterministic: the same (query, limit)
    /// pair produces the same outcome — including the same answer bytes
    /// when it survives — on every run and on any workspace.
    #[test]
    fn work_limited_outcomes_are_reproducible(
        (g, batch) in graph_and_killed_batch()
    ) {
        let eve = Eve::with_defaults(&g);
        let mut warm = QueryWorkspace::new();
        for &(q, limit) in &batch {
            // One budget per run: a budget accumulates its charge, so
            // sharing one across runs would double-bill the second.
            let a = eve.query_budgeted(&mut warm, q, &QueryBudget::with_work_limit(limit));
            let b = eve.query_budgeted(
                &mut QueryWorkspace::new(),
                q,
                &QueryBudget::with_work_limit(limit),
            );
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x.edges(), y.edges()),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                (x, y) => prop_assert!(false,
                    "same (query, limit) diverged: {:?} vs {:?}", x.is_ok(), y.is_ok()),
            }
        }
    }
}
