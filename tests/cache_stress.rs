//! Concurrency stress for the shared result cache.
//!
//! Many threads hammer one [`SpgCache`] with a hit/miss workload
//! (`hit_miss_queries` plus repeat-heavy hot keys) under eviction pressure,
//! then the test checks global consistency:
//!
//! * **no torn entries** — every answer served anywhere, and everything
//!   still resident afterwards, is bit-identical to a fresh uncached
//!   compute;
//! * **counters sum** — cache hits + misses equal the total lookups issued
//!   across all threads, and the per-thread executor counters sum to the
//!   global ones;
//! * **budget** — the byte bound holds at the end (it holds throughout by
//!   the invariant tests; here it survives real contention).

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use hop_spg::eve::{BatchExecutor, CachedEve, Eve, Query, QueryWorkspace, SpgCache};
use hop_spg::graph::generators::gnm_random;
use hop_spg::graph::VersionedGraph;
use hop_spg::workloads::{hit_miss_queries, repeat_heavy_queries};

/// Deterministic per-thread shuffle so threads interleave hot keys
/// differently without an RNG dependency in the test.
fn rotate(mut batch: Vec<Query>, by: usize) -> Vec<Query> {
    let len = batch.len();
    batch.rotate_left(by % len.max(1));
    batch
}

fn stress(threads: usize, rounds: usize, budget: usize) {
    let vg = VersionedGraph::new(gnm_random(300, 1800, 0xCAFE));
    let eve = Eve::with_defaults(vg.graph());
    let cache = SpgCache::with_shards(budget, 8);
    let cached = CachedEve::with_defaults(&vg, &cache);

    // Hit/miss mix (cheap misses stress insert/evict) plus hot repeats
    // (stress the same shard entries from every thread).
    let mut workload = hit_miss_queries(vg.graph(), 60, 4, 0.5, 0x5EED);
    workload.extend(repeat_heavy_queries(
        vg.graph(),
        120,
        &[3, 4, 6],
        12,
        0.8,
        0x5EED,
    ));
    assert!(workload.len() >= 120, "workload generation failed");
    let lookups = AtomicU64::new(0);

    thread::scope(|scope| {
        for tid in 0..threads {
            let workload = rotate(workload.clone(), 17 * tid + 1);
            let cached = &cached;
            let eve = &eve;
            let lookups = &lookups;
            scope.spawn(move || {
                let mut ws = QueryWorkspace::new();
                let mut check = QueryWorkspace::new();
                for round in 0..rounds {
                    for (i, &q) in workload.iter().enumerate() {
                        let got = cached.query_with(&mut ws, q).expect("valid workload");
                        lookups.fetch_add(1, Ordering::Relaxed);
                        // Spot-check served answers against a fresh compute
                        // on a rotating subset (checking all 180 × rounds
                        // would dominate the test's runtime).
                        if (i + round) % 29 == tid % 29 {
                            let fresh = eve.query_with(&mut check, q).expect("valid workload");
                            assert_eq!(
                                got.edges(),
                                fresh.edges(),
                                "torn or stale entry for {q} (thread {tid}, round {round})"
                            );
                            assert_eq!(
                                got.stats().upper_bound_edges,
                                fresh.stats().upper_bound_edges
                            );
                        }
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed),
        "every lookup is exactly one hit or one miss"
    );
    assert!(stats.hits > 0, "hot keys must hit under repetition");
    assert!(cache.bytes() <= budget, "budget violated under contention");
    assert_eq!(stats.bytes, cache.bytes());

    // Everything still resident is consistent: replay the workload once
    // more single-threaded and compare every slot against fresh computes.
    let mut ws = QueryWorkspace::new();
    let mut fresh_ws = QueryWorkspace::new();
    for &q in &workload {
        let via_cache = cached.query_with(&mut ws, q).unwrap();
        let fresh = eve.query_with(&mut fresh_ws, q).unwrap();
        assert_eq!(via_cache.edges(), fresh.edges(), "final consistency: {q}");
    }

    // The parallel executor path over the same shared cache: compute-worker
    // counters must sum to the global miss count (the probe phase counts
    // hits and coalesced duplicates on the draining thread) and slots stay
    // correct.
    let outcome = BatchExecutor::new(threads).run_cached_detailed(&cached, &workload);
    let misses: usize = outcome
        .stats
        .per_thread
        .iter()
        .map(|t| t.cache_misses)
        .sum();
    assert_eq!(misses, outcome.stats.cache_misses);
    assert_eq!(
        outcome.stats.cache_hits + outcome.stats.cache_misses + outcome.stats.cache_coalesced,
        outcome.stats.answered
    );
    for (got, &q) in outcome.results.iter().zip(&workload) {
        let fresh = eve.query_with(&mut fresh_ws, q).unwrap();
        assert_eq!(got.as_ref().unwrap().edges(), fresh.edges());
    }
}

/// Eviction pressure: a budget far smaller than the working set.
#[test]
fn hammering_one_small_cache_stays_consistent() {
    stress(8, 2, 32 << 10);
}

/// Ample budget: the all-hits steady state with every thread on hot keys.
#[test]
fn hammering_one_large_cache_stays_consistent() {
    stress(4, 2, 8 << 20);
}

/// Heavier variant for the CI `--ignored` job: more threads, more rounds,
/// tighter budget — maximum contention on the shard locks.
#[test]
#[ignore = "heavy concurrency stress; run via cargo test --release -- --ignored"]
fn heavy_cache_contention_sweep() {
    for (threads, rounds, budget) in [(16, 4, 16 << 10), (12, 6, 64 << 10), (8, 8, 4 << 20)] {
        stress(threads, rounds, budget);
    }
}
