//! Differential property tests for the bit-parallel MS-BFS Phase-1 engine.
//!
//! The contract under test: for every lane `(s, t, k)` of a cohort — at any
//! lane count up to 64, with duplicated and overlapping endpoints,
//! unreachable pairs, `k` from 0 past `n`, and lane hop budgets *deeper*
//! than the query's `k` (a shared lane runs to the maximum `k` of the
//! queries it serves) — the search-space distances materialised from the
//! shared traversal are identical to the per-query [`FlatDistances`] engine
//! under **all three** [`DistanceStrategy`] variants, and to the hash-map
//! [`DistanceIndex`]. This is the property that makes cohort-shared batch
//! answers bit-identical to per-query answers.

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::graph::traversal::{DistanceIndex, DistanceStrategy};
use hop_spg::graph::{DiGraph, Direction, FlatDistances, FrontierMode, MsBfsEngine, MsBfsLane};

/// A lane spec: endpoints, the query hop budget `k`, and how much deeper
/// the shared traversal runs than the query needs.
#[derive(Debug, Clone, Copy)]
struct LaneSpec {
    s: u32,
    t: u32,
    k: u32,
    extra_depth: u32,
}

fn graph_and_lanes() -> impl Strategy<Value = (DiGraph, Vec<LaneSpec>)> {
    (4usize..20).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        // Endpoints from a *small* sub-range so lanes duplicate and overlap;
        // k runs from 0 (records only the start) past n (clamp regime).
        let lanes = vec(
            (0..n as u32, 0..n as u32, 0u32..(n as u32 + 3), 0u32..3),
            1..20,
        );
        (edges, lanes).prop_map(move |(edges, lane_tuples)| {
            let g = DiGraph::from_edges(n, edges);
            let lanes: Vec<LaneSpec> = lane_tuples
                .into_iter()
                .filter(|&(s, t, _, _)| s != t)
                .map(|(s, t, k, extra_depth)| LaneSpec {
                    s,
                    t,
                    k,
                    extra_depth,
                })
                .collect();
            (g, lanes)
        })
    })
}

/// Materialises lane `lane` of the two engine runs into a loaded
/// [`FlatDistances`] for query budget `k` — exactly what the cohort
/// executor does per member.
fn load_lane(engine: &MsBfsEngine, lane: usize, n: usize, spec: LaneSpec) -> FlatDistances {
    let mut fd = FlatDistances::new();
    fd.begin_load(n, spec.s, spec.t, spec.k);
    engine.for_each_lane_distance(Direction::Forward, lane, |v, d| fd.push_forward(v, d));
    engine.for_each_lane_distance(Direction::Backward, lane, |v, d| fd.push_backward(v, d));
    fd
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Shared-lane distances ≡ `FlatDistances` ≡ `DistanceIndex` for every
    /// strategy, every frontier mode, every vertex.
    #[test]
    fn msbfs_matches_per_query_engines((g, lanes) in graph_and_lanes()) {
        if lanes.is_empty() {
            return Ok(None); // vendored-proptest case rejection
        }
        let n = g.vertex_count();
        let engine_lanes: Vec<MsBfsLane> = lanes
            .iter()
            .map(|l| MsBfsLane { source: l.s, target: l.t, depth: l.k + l.extra_depth })
            .collect();

        for mode in [
            FrontierMode::DirectionOptimizing,
            FrontierMode::TopDownOnly,
            FrontierMode::BottomUpOnly,
        ] {
            let mut engine = MsBfsEngine::new();
            engine.set_mode(mode);
            engine.run(&g, &engine_lanes);

            let mut per_query = FlatDistances::new();
            for (lane, &spec) in lanes.iter().enumerate() {
                let loaded = load_lane(&engine, lane, n, spec);
                for strategy in DistanceStrategy::ALL {
                    per_query.compute(&g, spec.s, spec.t, spec.k, strategy);
                    prop_assert!(
                        loaded.is_feasible() == per_query.is_feasible(),
                        "feasibility: lane {} {:?} {} {:?}",
                        lane, spec, strategy.name(), mode
                    );
                    for v in g.vertices() {
                        prop_assert!(
                            loaded.dist_from_s(v) == per_query.dist_from_s(v),
                            "dist_from_s: lane {} v {} {:?} {} {:?}: {} != {}",
                            lane, v, spec, strategy.name(), mode,
                            loaded.dist_from_s(v), per_query.dist_from_s(v)
                        );
                        prop_assert!(
                            loaded.dist_to_t(v) == per_query.dist_to_t(v),
                            "dist_to_t: lane {} v {} {:?} {} {:?}: {} != {}",
                            lane, v, spec, strategy.name(), mode,
                            loaded.dist_to_t(v), per_query.dist_to_t(v)
                        );
                        prop_assert_eq!(
                            loaded.in_search_space(v),
                            per_query.in_search_space(v)
                        );
                    }
                }
                // The hash-map reference index agrees as well.
                let idx = DistanceIndex::compute(
                    &g, spec.s, spec.t, spec.k,
                    DistanceStrategy::AdaptiveBidirectional,
                );
                for v in g.vertices() {
                    prop_assert_eq!(loaded.dist_from_s(v), idx.dist_from_s(v));
                    prop_assert_eq!(loaded.dist_to_t(v), idx.dist_to_t(v));
                }
            }
        }
    }

    /// A duplicate (s, t) pair served by lanes of different hop budgets —
    /// the cohort dedup case, where the deepest k wins the lane — yields
    /// the same *filtered* distances at the smallest budget from every
    /// lane, all equal to the per-query engine.
    #[test]
    fn deeper_duplicate_lanes_serve_shallower_queries(
        (g, lanes) in graph_and_lanes(),
        dup in 0usize..8,
    ) {
        if lanes.is_empty() {
            return Ok(None); // vendored-proptest case rejection
        }
        let spec = lanes[dup % lanes.len()];
        let n = g.vertex_count();
        // The same pair three times with different budgets: k, k + 1, 2k.
        let budgets = [spec.k, spec.k + 1, spec.k.saturating_mul(2).max(spec.k)];
        let engine_lanes: Vec<MsBfsLane> = budgets
            .iter()
            .map(|&depth| MsBfsLane { source: spec.s, target: spec.t, depth })
            .collect();
        let mut engine = MsBfsEngine::new();
        engine.run(&g, &engine_lanes);
        let mut per_query = FlatDistances::new();
        per_query.compute(&g, spec.s, spec.t, spec.k, DistanceStrategy::Single);
        for (lane, &budget) in budgets.iter().enumerate() {
            let loaded = load_lane(&engine, lane, n, LaneSpec { k: spec.k, ..spec });
            for v in g.vertices() {
                prop_assert!(
                    loaded.dist_from_s(v) == per_query.dist_from_s(v),
                    "lane {} (budget {}) v {}: {} != {}",
                    lane, budget, v,
                    loaded.dist_from_s(v), per_query.dist_from_s(v)
                );
                prop_assert!(
                    loaded.dist_to_t(v) == per_query.dist_to_t(v),
                    "lane {} (budget {}) v {} backward",
                    lane, budget, v
                );
            }
        }
    }
}
