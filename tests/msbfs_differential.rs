//! Differential property tests for the bit-parallel MS-BFS Phase-1 engine.
//!
//! The contract under test: for every lane `(s, t, k)` of a cohort — at any
//! lane count up to the block width, with duplicated and overlapping
//! endpoints, unreachable pairs, `k` from 0 past `n`, and lane hop budgets
//! *deeper* than the query's `k` (a shared lane runs to the maximum `k` of
//! the queries it serves) — the search-space distances materialised from the
//! shared traversal are identical to the per-query [`FlatDistances`] engine
//! under **all three** [`DistanceStrategy`] variants, and to the hash-map
//! [`DistanceIndex`]. The sweep covers every lane-block width (64-, 128-
//! and 256-lane cohorts), every [`FrontierMode`], and the α/β hysteresis /
//! fixed-denominator [`FrontierPolicy`] variants. This is the property that
//! makes cohort-shared batch answers bit-identical to per-query answers.
//!
//! A separate executor-level test covers the widening payoff end to end: a
//! batch with more than 64 distinct endpoint pairs that the old engine had
//! to split across cohorts now runs as a single 256-lane cohort, with
//! answers bit-identical to the per-query path at 1, 2 and 4 threads.

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{BatchExecutor, Eve, LaneWidth, Query};
use hop_spg::graph::generators::gnm_random;
use hop_spg::graph::traversal::{DistanceIndex, DistanceStrategy};
use hop_spg::graph::{
    DiGraph, Direction, FlatDistances, FrontierMode, FrontierPolicy, LaneBlock, Lanes128, Lanes256,
    Lanes64, MsBfsEngine, MsBfsLane,
};

/// A lane spec: endpoints, the query hop budget `k`, and how much deeper
/// the shared traversal runs than the query needs.
#[derive(Debug, Clone, Copy)]
struct LaneSpec {
    s: u32,
    t: u32,
    k: u32,
    extra_depth: u32,
}

fn graph_and_lanes() -> impl Strategy<Value = (DiGraph, Vec<LaneSpec>)> {
    (4usize..20).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        // Endpoints from a *small* sub-range so lanes duplicate and overlap;
        // k runs from 0 (records only the start) past n (clamp regime).
        let lanes = vec(
            (0..n as u32, 0..n as u32, 0u32..(n as u32 + 3), 0u32..3),
            1..20,
        );
        (edges, lanes).prop_map(move |(edges, lane_tuples)| {
            let g = DiGraph::from_edges(n, edges);
            let lanes: Vec<LaneSpec> = lane_tuples
                .into_iter()
                .filter(|&(s, t, _, _)| s != t)
                .map(|(s, t, k, extra_depth)| LaneSpec {
                    s,
                    t,
                    k,
                    extra_depth,
                })
                .collect();
            (g, lanes)
        })
    })
}

/// Materialises lane `lane` of an engine run into a loaded
/// [`FlatDistances`] for query budget `k` — exactly what the cohort
/// executor does per member.
fn load_lane<B: LaneBlock>(
    engine: &MsBfsEngine<B>,
    lane: usize,
    n: usize,
    spec: LaneSpec,
) -> FlatDistances {
    let mut fd = FlatDistances::new();
    fd.begin_load(n, spec.s, spec.t, spec.k);
    engine.for_each_lane_distance(Direction::Forward, lane, |v, d| fd.push_forward(v, d));
    engine.for_each_lane_distance(Direction::Backward, lane, |v, d| fd.push_backward(v, d));
    fd
}

/// Per-query reference distances for every lane, cross-checked across all
/// [`DistanceStrategy`] variants and the hash-map [`DistanceIndex`] so any
/// engine disagreement below is unambiguous.
fn reference_distances(g: &DiGraph, lanes: &[LaneSpec]) -> Vec<FlatDistances> {
    let mut expected = Vec::with_capacity(lanes.len());
    let mut scratch = FlatDistances::new();
    for &spec in lanes {
        let mut fd = FlatDistances::new();
        fd.compute(g, spec.s, spec.t, spec.k, DistanceStrategy::Single);
        for strategy in DistanceStrategy::ALL {
            scratch.compute(g, spec.s, spec.t, spec.k, strategy);
            assert_eq!(
                fd.is_feasible(),
                scratch.is_feasible(),
                "strategy {} disagrees on feasibility for {spec:?}",
                strategy.name()
            );
            for v in g.vertices() {
                assert_eq!(fd.dist_from_s(v), scratch.dist_from_s(v));
                assert_eq!(fd.dist_to_t(v), scratch.dist_to_t(v));
            }
        }
        let idx = DistanceIndex::compute(
            g,
            spec.s,
            spec.t,
            spec.k,
            DistanceStrategy::AdaptiveBidirectional,
        );
        for v in g.vertices() {
            assert_eq!(fd.dist_from_s(v), idx.dist_from_s(v));
            assert_eq!(fd.dist_to_t(v), idx.dist_to_t(v));
        }
        expected.push(fd);
    }
    expected
}

/// Runs one engine configuration at block width `B` and checks every lane's
/// materialised distances against the per-query reference.
fn check_width<B: LaneBlock>(
    g: &DiGraph,
    lanes: &[LaneSpec],
    expected: &[FlatDistances],
    mode: FrontierMode,
    policy: FrontierPolicy,
) {
    let n = g.vertex_count();
    let engine_lanes: Vec<MsBfsLane> = lanes
        .iter()
        .map(|l| MsBfsLane {
            source: l.s,
            target: l.t,
            depth: l.k + l.extra_depth,
        })
        .collect();
    let mut engine = MsBfsEngine::<B>::new();
    engine.set_mode(mode);
    engine.set_policy(policy);
    engine.run(g, &engine_lanes);
    for (lane, (&spec, exp)) in lanes.iter().zip(expected).enumerate() {
        let loaded = load_lane(&engine, lane, n, spec);
        assert_eq!(
            loaded.is_feasible(),
            exp.is_feasible(),
            "feasibility: {} lanes {mode:?} {policy:?} lane {lane} {spec:?}",
            B::LANES
        );
        for v in g.vertices() {
            assert_eq!(
                loaded.dist_from_s(v),
                exp.dist_from_s(v),
                "dist_from_s: {} lanes {mode:?} {policy:?} lane {lane} v {v} {spec:?}",
                B::LANES
            );
            assert_eq!(
                loaded.dist_to_t(v),
                exp.dist_to_t(v),
                "dist_to_t: {} lanes {mode:?} {policy:?} lane {lane} v {v} {spec:?}",
                B::LANES
            );
            assert_eq!(loaded.in_search_space(v), exp.in_search_space(v));
        }
    }
}

/// (mode, policy) configurations the width sweep exercises: every frontier
/// mode under the default α/β hysteresis, plus the direction-optimizing
/// mode under a sluggish hysteresis, the legacy fixed switch and an eager
/// fixed switch.
const CONFIGS: [(FrontierMode, FrontierPolicy); 6] = [
    (
        FrontierMode::DirectionOptimizing,
        FrontierPolicy::Hysteresis { alpha: 2, beta: 8 },
    ),
    (
        FrontierMode::TopDownOnly,
        FrontierPolicy::Hysteresis { alpha: 2, beta: 8 },
    ),
    (
        FrontierMode::BottomUpOnly,
        FrontierPolicy::Hysteresis { alpha: 2, beta: 8 },
    ),
    (
        FrontierMode::DirectionOptimizing,
        FrontierPolicy::Hysteresis {
            alpha: 14,
            beta: 24,
        },
    ),
    (
        FrontierMode::DirectionOptimizing,
        FrontierPolicy::Fixed { denominator: 2 },
    ),
    (
        FrontierMode::DirectionOptimizing,
        FrontierPolicy::Fixed { denominator: 8 },
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Shared-lane distances ≡ `FlatDistances` ≡ `DistanceIndex` for every
    /// lane-block width, frontier mode and frontier policy, every vertex.
    #[test]
    fn msbfs_matches_per_query_engines((g, lanes) in graph_and_lanes()) {
        if lanes.is_empty() {
            return Ok(None); // vendored-proptest case rejection
        }
        let expected = reference_distances(&g, &lanes);
        for (mode, policy) in CONFIGS {
            check_width::<Lanes64>(&g, &lanes, &expected, mode, policy);
            check_width::<Lanes128>(&g, &lanes, &expected, mode, policy);
            check_width::<Lanes256>(&g, &lanes, &expected, mode, policy);
        }
    }

    /// A duplicate (s, t) pair served by lanes of different hop budgets —
    /// the cohort dedup case, where the deepest k wins the lane — yields
    /// the same *filtered* distances at the smallest budget from every
    /// lane, all equal to the per-query engine. Checked at both the
    /// narrowest and the widest block.
    #[test]
    fn deeper_duplicate_lanes_serve_shallower_queries(
        (g, lanes) in graph_and_lanes(),
        dup in 0usize..8,
    ) {
        if lanes.is_empty() {
            return Ok(None); // vendored-proptest case rejection
        }
        let spec = lanes[dup % lanes.len()];
        let n = g.vertex_count();
        // The same pair three times with different budgets: k, k + 1, 2k.
        let budgets = [spec.k, spec.k + 1, spec.k.saturating_mul(2).max(spec.k)];
        let engine_lanes: Vec<MsBfsLane> = budgets
            .iter()
            .map(|&depth| MsBfsLane { source: spec.s, target: spec.t, depth })
            .collect();
        let mut narrow = MsBfsEngine::<Lanes64>::new();
        narrow.run(&g, &engine_lanes);
        let mut wide = MsBfsEngine::<Lanes256>::new();
        wide.run(&g, &engine_lanes);
        let mut per_query = FlatDistances::new();
        per_query.compute(&g, spec.s, spec.t, spec.k, DistanceStrategy::Single);
        for (lane, &budget) in budgets.iter().enumerate() {
            for loaded in [
                load_lane(&narrow, lane, n, LaneSpec { k: spec.k, ..spec }),
                load_lane(&wide, lane, n, LaneSpec { k: spec.k, ..spec }),
            ] {
                for v in g.vertices() {
                    prop_assert!(
                        loaded.dist_from_s(v) == per_query.dist_from_s(v),
                        "lane {} (budget {}) v {}: {} != {}",
                        lane, budget, v,
                        loaded.dist_from_s(v), per_query.dist_from_s(v)
                    );
                    prop_assert!(
                        loaded.dist_to_t(v) == per_query.dist_to_t(v),
                        "lane {} (budget {}) v {} backward",
                        lane, budget, v
                    );
                }
            }
        }
    }
}

/// A batch with more than 64 distinct endpoint pairs sharing one source:
/// one 64-lane cohort cannot hold it (the solo plan splits it in two), one
/// 256-lane cohort runs it in a single traversal — and every width's
/// answers are bit-identical to the per-query path at 1, 2 and 4 threads.
#[test]
fn wide_cohorts_match_per_query_at_every_thread_count() {
    let g = gnm_random(200, 1_200, 3);
    // 100 distinct pairs fanning out of vertex 0 at alternating hop
    // budgets; unreachable targets are fine (the answer is empty, not an
    // error) — the lane still occupies a cohort slot.
    let batch: Vec<Query> = (1u32..=100)
        .map(|t| Query::new(0, t, 4 + (t % 2) * 2))
        .collect();

    let eve = Eve::with_defaults(&g);
    let per_query = BatchExecutor::new(1).shared_phase1(false);
    let expected: Vec<Vec<(u32, u32)>> = per_query
        .run(&eve, &batch)
        .into_iter()
        .map(|slot| slot.expect("valid queries").edges().to_vec())
        .collect();

    // Solo plans have no member cap: the cohort count is exactly the
    // lane-capacity split.
    let narrow = BatchExecutor::new(1).phase1_lanes(LaneWidth::W64);
    let narrow_outcome = narrow.run_detailed(&eve, &batch);
    assert_eq!(
        narrow_outcome.stats.phase1.cohorts, 2,
        "100 pairs must split across two 64-lane cohorts"
    );
    let wide = BatchExecutor::new(1).phase1_lanes(LaneWidth::W256);
    let wide_outcome = wide.run_detailed(&eve, &batch);
    assert_eq!(
        wide_outcome.stats.phase1.cohorts, 1,
        "100 pairs must fit one 256-lane cohort"
    );
    assert_eq!(wide_outcome.stats.phase1.distinct_endpoints, 100);

    for (threads, width) in [
        (1, LaneWidth::W64),
        (1, LaneWidth::W128),
        (1, LaneWidth::W256),
        (2, LaneWidth::W64),
        (2, LaneWidth::W256),
        (4, LaneWidth::W64),
        (4, LaneWidth::W256),
    ] {
        let executor = BatchExecutor::new(threads).phase1_lanes(width);
        let results = executor.run(&eve, &batch);
        for (i, (got, exp)) in results.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.as_ref().expect("valid queries").edges(),
                exp.as_slice(),
                "slot {i} diverged at {threads} threads / {width:?}"
            );
        }
    }
}
