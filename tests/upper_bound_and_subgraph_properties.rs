//! Structural properties of the upper-bound graph, the k-hop subgraph and
//! the answer itself, checked across crates.

use hop_spg::baselines::{khsq_plus, spg_by_enumeration, EnumerationAlgorithm};
use hop_spg::eve::{Eve, Query};
use hop_spg::graph::generators::gnm_random;
use hop_spg::workloads::reachable_queries;

/// Theorem 4.8 plus Definition 4.1: the upper bound always contains the
/// exact answer, and equals it for k ≤ 4.
#[test]
fn upper_bound_contains_answer_and_is_exact_for_small_k() {
    for seed in 0..6u64 {
        let g = gnm_random(50, 280, 40 + seed);
        let eve = Eve::with_defaults(&g);
        for k in 2..=7u32 {
            for q in reachable_queries(&g, 4, k, seed) {
                let out = eve.query_detailed(q).unwrap();
                assert!(
                    out.spg.as_subgraph().is_subgraph_of(&out.upper_bound),
                    "answer ⊄ upper bound for {q}"
                );
                if k <= 4 {
                    assert_eq!(
                        out.upper_bound.edge_count(),
                        out.spg.edge_count(),
                        "upper bound not exact for {q}"
                    );
                }
            }
        }
    }
}

/// `SPG_k(s,t) ⊆ G^k_st`: the simple path graph is always inside the k-hop
/// subgraph computed by KHSQ+ (§6.7).
#[test]
fn spg_is_contained_in_the_khop_subgraph() {
    let g = gnm_random(60, 350, 5);
    let eve = Eve::with_defaults(&g);
    for k in 3..=7u32 {
        for q in reachable_queries(&g, 5, k, 60 + k as u64) {
            let spg = eve.query(q).unwrap();
            let (gkst, _) = khsq_plus(&g, q.source, q.target, q.k);
            assert!(
                spg.as_subgraph().is_subgraph_of(&gkst),
                "SPG ⊄ G^k_st for {q}"
            );
        }
    }
}

/// Monotonicity in k: increasing the hop budget can only add edges.
#[test]
fn answers_are_monotone_in_k() {
    let g = gnm_random(45, 240, 71);
    let eve = Eve::with_defaults(&g);
    for q in reachable_queries(&g, 6, 3, 8) {
        let mut previous = eve.query(Query::new(q.source, q.target, 2)).unwrap();
        for k in 3..=8u32 {
            let current = eve.query(Query::new(q.source, q.target, k)).unwrap();
            assert!(
                previous.as_subgraph().is_subgraph_of(current.as_subgraph()),
                "SPG_{} ⊄ SPG_{k} for {q}",
                k - 1
            );
            previous = current;
        }
    }
}

/// Every edge of the answer admits an independently verified witness path:
/// re-running the enumeration oracle restricted to the answer graph yields
/// the answer itself (no dead edges).
#[test]
fn answer_graph_has_no_dead_edges() {
    let g = gnm_random(40, 220, 99);
    let eve = Eve::with_defaults(&g);
    for k in [5u32, 7] {
        for q in reachable_queries(&g, 4, k, 100 + k as u64) {
            let spg = eve.query(q).unwrap();
            let restricted = spg.to_graph(g.vertex_count());
            let re_enumerated = spg_by_enumeration(
                EnumerationAlgorithm::PrunedDfs,
                &restricted,
                q.source,
                q.target,
                q.k,
            );
            assert_eq!(spg.edges(), re_enumerated.edges(), "dead edges in {q}");
        }
    }
}

/// Coverage ratio is a proper ratio and the answer never exceeds the host
/// graph.
#[test]
fn coverage_ratio_is_bounded() {
    let g = gnm_random(80, 500, 3);
    let eve = Eve::with_defaults(&g);
    for q in reachable_queries(&g, 10, 6, 12) {
        let spg = eve.query(q).unwrap();
        let r = spg.coverage_ratio(&g);
        assert!((0.0..=1.0).contains(&r));
        assert!(spg.edge_count() <= g.edge_count());
    }
}
