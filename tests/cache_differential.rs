//! Differential proptests proving the result cache invisible.
//!
//! The contract under test: routing a batch through the versioned
//! [`SpgCache`] — sequentially via [`CachedEve`] or in parallel via
//! [`BatchExecutor::run_cached`] at any thread count — produces slots
//! *bit-identical* to the uncached pipeline: same edges and vertex counts
//! per `Ok` slot, same stats-relevant fields (`upper_bound_edges`, recorded
//! clamped query), same [`QueryError`] per `Err` slot, in input order.
//! Batches are shuffled and repeat-heavy so hot keys hit from every worker,
//! include malformed queries (errors must bypass the cache), and include
//! `k`-clamp aliases (`k ≥ n − 1` values that must share one cache entry).

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{BatchExecutor, CachedEve, Eve, Query, SpgCache};
use hop_spg::graph::{DiGraph, VersionedGraph};
use hop_spg::workloads::repeat_heavy_queries;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Strategy: a small random digraph plus a repeat-heavy shuffled batch that
/// mixes valid, invalid (s == t, out-of-range endpoint, k == 0) and
/// clamp-stressing huge-k queries.
fn graph_and_batch() -> impl Strategy<Value = (DiGraph, Vec<Query>)> {
    (4usize..16).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        // A short "seed" batch of raw triples…
        let seeds = vec((0..n as u32 + 2, 0..n as u32 + 2, 0u32..10), 1..10);
        // …plus an index sequence that replays seeds with repetition, which
        // is what makes the batch cache-hot and shuffled at once.
        let replay = vec(0usize..64, 8..40);
        (edges, seeds, replay).prop_map(move |(edges, seeds, replay)| {
            let g = DiGraph::from_edges(n, edges);
            let batch: Vec<Query> = replay
                .into_iter()
                .enumerate()
                .map(|(i, idx)| {
                    let (s, t, k) = seeds[idx % seeds.len()];
                    // Every seventh slot stresses the entry-point clamp; the
                    // cache must key these onto the clamped-k entry.
                    let k = if i % 7 == 3 { u32::MAX - k } else { k };
                    Query::new(s, t, k)
                })
                .collect();
            (g, batch)
        })
    })
}

/// One uncached ground-truth slot: edges, upper-bound edge count and the
/// recorded (clamped) `k` of an `Ok` answer, or the stringified error.
type UncachedSlot = Result<(Vec<(u32, u32)>, usize, u32), String>;

/// Uncached ground truth: a fresh workspace per query.
fn uncached_fresh(eve: &Eve<'_>, batch: &[Query]) -> Vec<UncachedSlot> {
    batch
        .iter()
        .map(|&q| {
            eve.query(q)
                .map(|spg| {
                    (
                        spg.edges().to_vec(),
                        spg.stats().upper_bound_edges,
                        spg.query().k,
                    )
                })
                .map_err(|e| e.to_string())
        })
        .collect()
}

fn assert_cached_matches(
    cached: &CachedEve<'_, '_>,
    batch: &[Query],
    expected: &[UncachedSlot],
    threads: usize,
) -> Result<(), String> {
    let outcome = BatchExecutor::new(threads).run_cached_detailed(cached, batch);
    prop_assert_eq!(outcome.results.len(), expected.len());
    let mut errors = 0usize;
    for (i, (got, exp)) in outcome.results.iter().zip(expected).enumerate() {
        match (got, exp) {
            (Ok(spg), Ok((edges, ub_edges, clamped_k))) => {
                prop_assert!(
                    spg.edges() == edges.as_slice(),
                    "slot {i} threads {threads}: {:?} != {:?}",
                    spg.edges(),
                    edges
                );
                prop_assert!(
                    spg.stats().upper_bound_edges == *ub_edges,
                    "slot {i} threads {threads}: upper-bound edges diverged"
                );
                prop_assert!(
                    spg.query().k == *clamped_k,
                    "slot {i} threads {threads}: recorded clamp diverged"
                );
            }
            (Err(e), Err(msg)) => {
                errors += 1;
                prop_assert!(
                    &e.to_string() == msg,
                    "slot {i} threads {threads}: {e} != {msg}"
                );
            }
            _ => prop_assert!(false, "slot {i} threads {threads}: Ok/Err mismatch"),
        }
    }
    // Error slots bypass the cache entirely; every valid slot is exactly a
    // hit, a computed miss, or a duplicate coalesced onto a miss in flight.
    prop_assert_eq!(outcome.stats.errors, errors);
    prop_assert_eq!(
        outcome.stats.cache_hits + outcome.stats.cache_misses + outcome.stats.cache_coalesced,
        outcome.stats.answered
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached execution is bit-identical to the uncached pipeline at 1, 2,
    /// 4 and 8 threads. The cache persists across thread counts, so later
    /// ladders run almost entirely on hits — and must still be identical.
    #[test]
    fn cached_batches_match_uncached((g, batch) in graph_and_batch()) {
        let vg = VersionedGraph::new(g);
        let eve = Eve::with_defaults(vg.graph());
        let expected = uncached_fresh(&eve, &batch);
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        for threads in THREAD_COUNTS {
            assert_cached_matches(&cached, &batch, &expected, threads)?;
        }
        // A fully warm rerun is all hits and still identical.
        let warm = BatchExecutor::new(4).run_cached_detailed(&cached, &batch);
        prop_assert_eq!(warm.stats.cache_misses, 0);
        assert_cached_matches(&cached, &batch, &expected, 4)?;
    }

    /// A *tiny* budget (perpetual eviction pressure) must never change
    /// answers — only the hit rate.
    #[test]
    fn eviction_pressure_never_changes_answers((g, batch) in graph_and_batch()) {
        let vg = VersionedGraph::new(g);
        let eve = Eve::with_defaults(vg.graph());
        let expected = uncached_fresh(&eve, &batch);
        // ~1 KiB across 2 shards: most inserts evict or get rejected.
        let cache = SpgCache::with_shards(1024, 2);
        let cached = CachedEve::with_defaults(&vg, &cache);
        for threads in [1usize, 4] {
            assert_cached_matches(&cached, &batch, &expected, threads)?;
        }
        prop_assert!(cache.bytes() <= 1024);
    }

    /// Sequential `CachedEve::query_with` on one reused workspace agrees
    /// with the parallel cached executor slot-for-slot.
    #[test]
    fn sequential_cached_agrees_with_parallel((g, batch) in graph_and_batch()) {
        let vg = VersionedGraph::new(g);
        let cache = SpgCache::new(1 << 20);
        let cached = CachedEve::with_defaults(&vg, &cache);
        let sequential = cached.query_batch(&batch);
        let parallel = BatchExecutor::new(4).run_cached(&cached, &batch);
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            match (s, p) {
                (Ok(a), Ok(b)) => prop_assert!(a.edges() == b.edges(), "slot {i} differs"),
                (Err(a), Err(b)) => prop_assert!(a == b, "slot {i} differs"),
                _ => prop_assert!(false, "slot {i}: Ok/Err mismatch"),
            }
        }
    }

}

proptest! {
    // The heavy sweep runs only in the CI `cargo test --release -- --ignored`
    // step, with double the case count of the default-suite proptests above.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heavier variant for the CI `--ignored` job: more cases, bigger
    /// graphs, longer repeat-heavy batches and a deliberately tiny cache
    /// budget, checked at every thread count.
    #[test]
    #[ignore = "heavy differential sweep; run via cargo test --release -- --ignored"]
    fn heavy_cached_differential_sweep(seed in 0u64..1u64 << 48) {
        let n = 60 + (seed % 60) as usize;
        let g = hop_spg::graph::generators::gnm_random(n, 5 * n, seed);
        let batch = repeat_heavy_queries(&g, 160, &[2, 4, 6, 9], 24, 0.7, seed ^ 0xFEED);
        prop_assert!(!batch.is_empty(), "dense gnm graphs always yield a pool");
        let vg = VersionedGraph::new(g);
        let eve = Eve::with_defaults(vg.graph());
        let expected = uncached_fresh(&eve, &batch);
        for budget in [4 << 10, 1 << 20] {
            let cache = SpgCache::with_shards(budget, 4);
            let cached = CachedEve::with_defaults(&vg, &cache);
            for threads in THREAD_COUNTS {
                assert_cached_matches(&cached, &batch, &expected, threads)?;
            }
            prop_assert!(cache.bytes() <= budget);
        }
    }
}

/// Regression: duplicate missed keys inside a single drain must compute
/// once. Before the two-phase singleflight drain, a batch of 64 identical
/// cold queries ran the pipeline 64 times and published 64 times; the cache
/// insert counter pins the fixed behaviour, and every slot still matches
/// the uncached answer bit for bit.
#[test]
fn duplicate_cold_misses_in_one_batch_compute_once() {
    let g = hop_spg::graph::generators::gnm_random(40, 200, 0xD00D);
    let vg = VersionedGraph::new(g);
    let eve = Eve::with_defaults(vg.graph());
    let cache = SpgCache::new(1 << 20);
    let cached = CachedEve::with_defaults(&vg, &cache);

    let hot = Query::new(0, 1, 5);
    let reference = eve.query(hot).unwrap();
    for threads in THREAD_COUNTS {
        cache.clear();
        let before = cache.stats().insertions;
        let batch = vec![hot; 64];
        let outcome = BatchExecutor::new(threads).run_cached_detailed(&cached, &batch);
        assert_eq!(
            cache.stats().insertions - before,
            1,
            "threads {threads}: 64 identical cold misses must publish once"
        );
        assert_eq!(outcome.stats.cache_misses, 1);
        assert_eq!(outcome.stats.cache_coalesced, 63);
        for slot in &outcome.results {
            assert_eq!(slot.as_ref().unwrap().edges(), reference.edges());
        }
    }
}

/// Deterministic k-clamp aliasing: all hop constraints ≥ n − 1 must share
/// one cache entry, and the served answers must carry the clamped query.
#[test]
fn clamp_aliases_share_one_entry_and_match_uncached() {
    // Small graph: k = n − 1 with an unrestricted search space is the
    // worst case for the verification phase, so keep n modest (the same
    // scale as the huge-k clamp regression test in spg-core).
    let g = hop_spg::graph::generators::gnm_random(12, 50, 99);
    let n = g.vertex_count() as u32;
    let vg = VersionedGraph::new(g);
    let eve = Eve::with_defaults(vg.graph());
    let cache = SpgCache::new(1 << 20);
    let cached = CachedEve::with_defaults(&vg, &cache);

    let reference = eve.query(Query::new(0, 1, n - 1)).unwrap();
    for (i, k) in [n - 1, n, n + 7, u32::MAX / 2, u32::MAX]
        .into_iter()
        .enumerate()
    {
        let got = cached.query(Query::new(0, 1, k)).unwrap();
        assert_eq!(got.edges(), reference.edges(), "k={k}");
        assert_eq!(got.query().k, n - 1, "k={k} must be recorded clamped");
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "k={k}: clamp aliases share one entry");
        assert_eq!(stats.misses, 1, "only the first alias computes");
        assert_eq!(stats.hits as usize, i, "k={k}");
    }
}
