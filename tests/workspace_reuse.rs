//! Property tests for the reusable `QueryWorkspace` (proptest).
//!
//! The contract under test: answering a *shuffled batch* of queries through
//! one long-lived workspace returns bit-identical SPG edge sets to fresh
//! single-shot `query` calls — workspace reuse can never leak state between
//! queries, across hop constraints, endpoints, or even host graphs.

use proptest::collection::vec;
use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hop_spg::eve::{Eve, Query, QueryWorkspace};
use hop_spg::graph::DiGraph;

/// Strategy: a small random digraph plus a batch of queries on it.
fn graph_and_batch() -> impl Strategy<Value = (DiGraph, Vec<Query>, u64)> {
    (4usize..16, 0u64..1_000_000).prop_flat_map(|(n, seed)| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(4 * n));
        let queries = vec((0..n as u32, 0..n as u32, 1u32..9), 1..10);
        (edges, queries).prop_map(move |(edges, qs)| {
            let g = DiGraph::from_edges(n, edges);
            let batch: Vec<Query> = qs
                .into_iter()
                .filter(|&(s, t, _)| s != t)
                .map(|(s, t, k)| Query::new(s, t, k))
                .collect();
            (g, batch, seed)
        })
    })
}

fn shuffle(batch: &mut [Query], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..batch.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        batch.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shuffled-batch reuse equals fresh single-shot queries, and both equal
    /// the hash-map reference pipeline.
    #[test]
    fn warm_workspace_matches_fresh_queries((g, mut batch, seed) in graph_and_batch()) {
        shuffle(&mut batch, seed);
        let eve = Eve::with_defaults(&g);
        let mut ws = QueryWorkspace::new();
        for &q in &batch {
            let warm = eve.query_with(&mut ws, q).unwrap();
            let fresh = eve.query(q).unwrap();
            let reference = eve.query_reference(q).unwrap();
            prop_assert_eq!(warm.edges(), fresh.edges());
            prop_assert_eq!(warm.edges(), reference.edges());
            prop_assert_eq!(
                warm.stats().upper_bound_edges,
                reference.stats().upper_bound_edges
            );
        }
    }

    /// One workspace shared across two different graphs: interleaving must
    /// not leak state in either direction.
    #[test]
    fn workspace_reuse_across_graphs(
        (g1, mut batch1, seed) in graph_and_batch(),
        (g2, mut batch2, _) in graph_and_batch(),
    ) {
        shuffle(&mut batch1, seed);
        shuffle(&mut batch2, seed.wrapping_add(1));
        let eve1 = Eve::with_defaults(&g1);
        let eve2 = Eve::with_defaults(&g2);
        let mut ws = QueryWorkspace::new();
        let rounds = batch1.len().max(batch2.len());
        for i in 0..rounds {
            if let Some(&q) = batch1.get(i) {
                let warm = eve1.query_with(&mut ws, q).unwrap();
                let fresh = eve1.query(q).unwrap();
                prop_assert_eq!(warm.edges(), fresh.edges());
            }
            if let Some(&q) = batch2.get(i) {
                let warm = eve2.query_with(&mut ws, q).unwrap();
                let fresh = eve2.query(q).unwrap();
                prop_assert_eq!(warm.edges(), fresh.edges());
            }
        }
    }

    /// The detailed output (upper bound included) is reuse-safe too.
    #[test]
    fn detailed_output_is_reuse_safe((g, mut batch, seed) in graph_and_batch()) {
        shuffle(&mut batch, seed);
        let eve = Eve::with_defaults(&g);
        let mut ws = QueryWorkspace::new();
        for &q in &batch {
            let warm = eve.query_detailed_with(&mut ws, q).unwrap();
            let reference = eve.query_detailed_reference(q).unwrap();
            prop_assert_eq!(warm.spg.edges(), reference.spg.edges());
            prop_assert_eq!(&warm.upper_bound, &reference.upper_bound);
            let ub = eve.upper_bound_with(&mut ws, q).unwrap();
            prop_assert_eq!(&ub, &warm.upper_bound);
        }
    }
}
