//! Integration tests for §6.7/§6.8: using `SPG_k(s, t)` (or `G^k_st`) as the
//! search space of an enumerator must preserve the enumerated path set
//! exactly.

use hop_spg::baselines::{khsq_plus, CollectPaths, PathEnumIndex};
use hop_spg::eve::Eve;
use hop_spg::graph::generators::{gnm_random, preferential_attachment};
use hop_spg::workloads::reachable_queries;

#[test]
fn pathenum_on_spg_enumerates_identical_paths() {
    let g = gnm_random(50, 300, 31);
    let eve = Eve::with_defaults(&g);
    for k in [4u32, 6] {
        for q in reachable_queries(&g, 5, k, 7 + k as u64) {
            let mut on_g = CollectPaths::new();
            PathEnumIndex::build(&g, q.source, q.target, q.k).enumerate(&mut on_g);

            let spg = eve.query(q).unwrap();
            let reduced = spg.to_graph(g.vertex_count());
            let mut on_spg = CollectPaths::new();
            PathEnumIndex::build(&reduced, q.source, q.target, q.k).enumerate(&mut on_spg);

            assert_eq!(on_g.into_sorted(), on_spg.into_sorted(), "query {q}");
        }
    }
}

#[test]
fn pathenum_on_gkst_enumerates_identical_paths() {
    let g = preferential_attachment(200, 3, 0.4, 3);
    for k in [4u32, 5] {
        for q in reachable_queries(&g, 5, k, 50 + k as u64) {
            let mut on_g = CollectPaths::new();
            PathEnumIndex::build(&g, q.source, q.target, q.k).enumerate(&mut on_g);

            let (gkst, _) = khsq_plus(&g, q.source, q.target, q.k);
            let reduced = gkst.to_graph(g.vertex_count());
            let mut on_gkst = CollectPaths::new();
            PathEnumIndex::build(&reduced, q.source, q.target, q.k).enumerate(&mut on_gkst);

            assert_eq!(on_g.into_sorted(), on_gkst.into_sorted(), "query {q}");
        }
    }
}

#[test]
fn spg_is_never_larger_than_gkst() {
    let g = gnm_random(70, 420, 8);
    let eve = Eve::with_defaults(&g);
    for q in reachable_queries(&g, 8, 6, 2) {
        let spg = eve.query(q).unwrap();
        let (gkst, _) = khsq_plus(&g, q.source, q.target, q.k);
        assert!(spg.edge_count() <= gkst.edge_count(), "query {q}");
    }
}
