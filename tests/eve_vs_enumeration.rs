//! Cross-crate integration tests: EVE against the enumeration oracle.
//!
//! The defining property of `SPG_k(s, t)` is that it equals the union of the
//! edges of all k-hop-constrained s-t simple paths. These tests enforce that
//! equality between the EVE implementation (`spg-core`) and the baseline
//! enumerators (`spg-baselines`) across random graphs, structured graphs and
//! the simulated datasets, for every configuration of the EVE pipeline.

use hop_spg::baselines::{spg_by_enumeration, EnumerationAlgorithm};
use hop_spg::eve::{Eve, EveConfig, Query};
use hop_spg::graph::generators::{
    community_graph, gnm_random, layered_dag, preferential_attachment,
};
use hop_spg::graph::{DiGraph, DistanceStrategy};
use hop_spg::workloads::{dataset_by_code, reachable_queries, DatasetScale};

fn oracle(g: &DiGraph, q: Query) -> Vec<(u32, u32)> {
    spg_by_enumeration(EnumerationAlgorithm::PrunedDfs, g, q.source, q.target, q.k)
        .edges()
        .to_vec()
}

fn check_graph(g: &DiGraph, queries: &[Query], config: EveConfig) {
    let eve = Eve::new(g, config);
    for &q in queries {
        let spg = eve.query(q).expect("valid query");
        let expected = oracle(g, q);
        assert_eq!(
            spg.edges(),
            expected.as_slice(),
            "mismatch for {q} with config {}",
            config.describe()
        );
    }
}

#[test]
fn eve_matches_enumeration_on_random_graphs() {
    for seed in 0..8u64 {
        let g = gnm_random(40, 200, seed);
        for k in 2..=8u32 {
            let queries = reachable_queries(&g, 5, k, seed + 1000);
            check_graph(&g, &queries, EveConfig::default());
        }
    }
}

#[test]
fn eve_matches_enumeration_on_scale_free_graphs() {
    let g = preferential_attachment(300, 3, 0.4, 77);
    for k in 3..=7u32 {
        let queries = reachable_queries(&g, 8, k, 5);
        check_graph(&g, &queries, EveConfig::default());
    }
}

#[test]
fn eve_matches_enumeration_on_community_graphs() {
    let g = community_graph(120, 4, 0.12, 0.01, 13);
    for k in 3..=6u32 {
        let queries = reachable_queries(&g, 8, k, 6);
        check_graph(&g, &queries, EveConfig::default());
    }
}

#[test]
fn eve_matches_enumeration_on_layered_dags() {
    let g = layered_dag(6, 4);
    let t = (6 * 4 - 1) as u32;
    for k in 5..=8u32 {
        let queries = vec![Query::new(0, t, k), Query::new(1, t - 1, k)];
        check_graph(&g, &queries, EveConfig::default());
    }
}

#[test]
fn every_configuration_produces_the_same_answer() {
    let g = gnm_random(60, 360, 17);
    let configs = [
        EveConfig::full(),
        EveConfig::naive(),
        EveConfig {
            distance_strategy: DistanceStrategy::Bidirectional,
            forward_looking_pruning: false,
            search_ordering: true,
        },
        EveConfig {
            distance_strategy: DistanceStrategy::Single,
            forward_looking_pruning: true,
            search_ordering: false,
        },
    ];
    for k in [4u32, 6, 8] {
        let queries = reachable_queries(&g, 6, k, 3);
        for config in configs {
            check_graph(&g, &queries, config);
        }
    }
}

#[test]
fn eve_matches_enumeration_on_simulated_datasets() {
    // Two representative datasets at quick scale, small query counts so the
    // oracle stays cheap.
    for code in ["tw", "gg"] {
        let spec = dataset_by_code(code).unwrap();
        let g = spec.build(DatasetScale::Quick);
        for k in [4u32, 6] {
            let queries = reachable_queries(&g, 3, k, 21);
            check_graph(&g, &queries, EveConfig::default());
        }
    }
}

#[test]
fn all_baseline_algorithms_agree_with_eve() {
    let g = gnm_random(30, 150, 23);
    let queries = reachable_queries(&g, 4, 6, 9);
    let eve = Eve::with_defaults(&g);
    for &q in &queries {
        let spg = eve.query(q).unwrap();
        for alg in EnumerationAlgorithm::ALL {
            let baseline = spg_by_enumeration(alg, &g, q.source, q.target, q.k);
            assert_eq!(
                spg.edges(),
                baseline.edges(),
                "EVE vs {} for {q}",
                alg.name()
            );
        }
    }
}
