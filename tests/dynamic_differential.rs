//! Differential harness for delta-aware graph updates.
//!
//! The contract under test: an overlay-patched [`VersionedGraph`] is
//! indistinguishable from a from-scratch rebuild. Every interleaving of
//! [`apply_delta_scoped`], [`VersionedGraph::compact`] and (cached,
//! parallel) query batches must produce answers *bit-identical* — same
//! edges, same `upper_bound_edges`, same recorded clamped `k`, same
//! [`QueryError`](hop_spg::eve::QueryError) strings per `Err` slot — to a
//! fresh [`Eve`] on a `DiGraph::from_edges` rebuild of the mutated edge
//! set. Scoped cache invalidation rides along: cached requeries after a
//! purge must serve the new graph's answers, never stale ones, at every
//! thread count and under tiny eviction-pressure budgets.

use std::collections::BTreeSet;

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{apply_delta_scoped, BatchExecutor, CachedEve, Eve, Query, SpgCache};
use hop_spg::graph::{DiGraph, EdgeDelta, VersionedGraph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One step of an interleaving, decoded from a raw tuple.
#[derive(Debug, Clone)]
enum Op {
    /// Apply a delta batch (adds and removes mixed).
    Apply(Vec<EdgeDelta>),
    /// Fold the overlay into a fresh CSR.
    Compact,
    /// Run the query batch through the cache and diff against a rebuild.
    Queries,
}

/// Decodes `(tag, a, b, c)` into an [`Op`] over an `n`-vertex graph. Deltas
/// avoid self-loops by construction (the wire layer rejects them), so every
/// generated batch is valid and `apply_delta_scoped` must return `Ok`.
fn decode_op(n: u32, (tag, a, b, c): (u8, u32, u32, u32)) -> Op {
    match tag % 6 {
        0..=2 => {
            let mut deltas = Vec::new();
            let (s, t) = (a % n, b % n);
            if s != t {
                deltas.push(if tag % 2 == 0 {
                    EdgeDelta::add(s, t)
                } else {
                    EdgeDelta::remove(s, t)
                });
            }
            let (s, t) = (b % n, c % n);
            if s != t {
                deltas.push(EdgeDelta::remove(s, t));
            }
            let (s, t) = (c % n, a % n);
            if s != t {
                deltas.push(EdgeDelta::add(s, t));
            }
            if deltas.is_empty() {
                Op::Compact
            } else {
                Op::Apply(deltas)
            }
        }
        3 => Op::Compact,
        _ => Op::Queries,
    }
}

/// Strategy: a small graph, an op interleaving, and a reusable query batch
/// mixing valid, erroring (`s == t`, out-of-range) and clamp-stressing
/// queries.
#[allow(clippy::type_complexity)]
fn graph_ops_and_batch() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<Op>, Vec<Query>)> {
    (4usize..12).prop_flat_map(|n| {
        let edges = vec((0..n as u32, 0..n as u32), 0..(3 * n));
        let ops = vec((0u8..255, 0u32..64, 0u32..64, 0u32..64), 4..14);
        let seeds = vec((0..n as u32 + 2, 0..n as u32 + 2, 0u32..9), 3..9);
        (edges, ops, seeds).prop_map(move |(edges, ops, seeds)| {
            let ops = ops
                .into_iter()
                .map(|raw| decode_op(n as u32, raw))
                .collect();
            let batch = seeds
                .into_iter()
                .enumerate()
                .map(|(i, (s, t, k))| {
                    let k = if i % 5 == 2 { u32::MAX - k } else { k };
                    Query::new(s, t, k)
                })
                .collect();
            (n, edges, ops, batch)
        })
    })
}

/// Ground-truth slot from a fresh uncached `Eve` on a rebuilt graph.
type Slot = Result<(Vec<(u32, u32)>, usize, u32), String>;

fn rebuild_reference(n: usize, model: &BTreeSet<(u32, u32)>, batch: &[Query]) -> Vec<Slot> {
    let rebuilt = DiGraph::from_edges(n, model.iter().copied());
    let eve = Eve::with_defaults(&rebuilt);
    batch
        .iter()
        .map(|&q| {
            eve.query(q)
                .map(|spg| {
                    (
                        spg.edges().to_vec(),
                        spg.stats().upper_bound_edges,
                        spg.query().k,
                    )
                })
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Runs the interleaving against one cache budget, diffing every query
/// phase (and a final one) against the full-rebuild reference.
fn run_interleaving(
    n: usize,
    initial: &[(u32, u32)],
    ops: &[Op],
    batch: &[Query],
    cache: &SpgCache,
    compact_threshold: usize,
) -> Result<(), String> {
    let mut model: BTreeSet<(u32, u32)> =
        initial.iter().copied().filter(|&(s, t)| s != t).collect();
    let mut vg = VersionedGraph::new(DiGraph::from_edges(n, model.iter().copied()));
    vg.set_compact_threshold(compact_threshold);

    let check = |vg: &VersionedGraph, model: &BTreeSet<(u32, u32)>| -> Result<(), String> {
        let expected = rebuild_reference(n, model, batch);
        let cached = CachedEve::with_defaults(vg, cache);
        for threads in THREAD_COUNTS {
            let results = BatchExecutor::new(threads).run_cached(&cached, batch);
            prop_assert_eq!(results.len(), expected.len());
            for (i, (got, exp)) in results.iter().zip(&expected).enumerate() {
                match (got, exp) {
                    (Ok(spg), Ok((edges, ub_edges, clamped_k))) => {
                        prop_assert!(
                            spg.edges() == edges.as_slice(),
                            "slot {i} threads {threads}: overlay answer != rebuild"
                        );
                        prop_assert!(
                            spg.stats().upper_bound_edges == *ub_edges,
                            "slot {i} threads {threads}: upper-bound edges diverged"
                        );
                        prop_assert!(
                            spg.query().k == *clamped_k,
                            "slot {i} threads {threads}: recorded clamp diverged"
                        );
                    }
                    (Err(e), Err(msg)) => prop_assert!(
                        &e.to_string() == msg,
                        "slot {i} threads {threads}: {e} != {msg}"
                    ),
                    _ => prop_assert!(false, "slot {i} threads {threads}: Ok/Err mismatch"),
                }
            }
        }
        Ok(())
    };

    for op in ops {
        match op {
            Op::Apply(deltas) => {
                apply_delta_scoped(&mut vg, cache, deltas).map_err(|e| e.to_string())?;
                for d in deltas {
                    match d.op {
                        hop_spg::graph::DeltaOp::Add => {
                            model.insert((d.source, d.target));
                        }
                        hop_spg::graph::DeltaOp::Remove => {
                            model.remove(&(d.source, d.target));
                        }
                    }
                }
            }
            Op::Compact => {
                vg.compact();
            }
            Op::Queries => check(&vg, &model)?,
        }
    }
    check(&vg, &model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of delta batches, compactions and cached parallel
    /// query phases is bit-identical to full rebuilds — with a roomy cache.
    #[test]
    fn interleavings_match_full_rebuild((n, edges, ops, batch) in graph_ops_and_batch()) {
        let cache = SpgCache::new(1 << 20);
        run_interleaving(n, &edges, &ops, &batch, &cache, usize::MAX)?;
    }

    /// The same interleavings under a tiny two-shard budget (perpetual
    /// eviction pressure racing the scoped purges) and a compact threshold
    /// of one patched row, so auto-compaction fires mid-interleaving.
    #[test]
    fn interleavings_survive_tiny_budgets_and_auto_compaction(
        (n, edges, ops, batch) in graph_ops_and_batch()
    ) {
        let cache = SpgCache::with_shards(1024, 2);
        run_interleaving(n, &edges, &ops, &batch, &cache, 1)?;
        prop_assert!(cache.bytes() <= 1024);
    }
}

/// Deterministic medium-scale differential: a long alternating run of
/// delta batches and cached requeries on a random graph, checked against
/// rebuilds both while the overlay is live and after an explicit
/// `compact()`.
#[test]
fn overlay_and_post_purge_answers_match_rebuild_deterministic() {
    let n = 48usize;
    let g = hop_spg::graph::generators::gnm_random(n, 4 * n, 0x9_D17);
    let mut model: BTreeSet<(u32, u32)> = (0..g.vertex_count() as u32)
        .flat_map(|s| {
            g.out_neighbors(s)
                .iter()
                .map(move |&t| (s, t))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut vg = VersionedGraph::new(g);
    let cache = SpgCache::new(1 << 20);

    // SplitMix64 so the delta stream is reproducible without any RNG dep.
    let mut state = 0xDE17A_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let batch: Vec<Query> = (0..24)
        .map(|i| Query::new(i % n as u32, (i * 7 + 3) % n as u32, 2 + i % 5))
        .collect();

    for round in 0..12 {
        let mut deltas = Vec::new();
        for _ in 0..6 {
            let r = next();
            let (s, t) = ((r % n as u64) as u32, ((r >> 20) % n as u64) as u32);
            if s == t {
                continue;
            }
            let d = if r >> 63 == 0 {
                EdgeDelta::add(s, t)
            } else {
                EdgeDelta::remove(s, t)
            };
            match d.op {
                hop_spg::graph::DeltaOp::Add => model.insert((s, t)),
                hop_spg::graph::DeltaOp::Remove => model.remove(&(s, t)),
            };
            deltas.push(d);
        }
        if deltas.is_empty() {
            continue;
        }
        apply_delta_scoped(&mut vg, &cache, &deltas).expect("valid batch");
        if round == 7 {
            vg.compact();
            assert!(!vg.graph().is_overlaid(), "compact folds the overlay");
        }

        let rebuilt = DiGraph::from_edges(n, model.iter().copied());
        let eve = Eve::with_defaults(&rebuilt);
        let cached = CachedEve::with_defaults(&vg, &cache);
        for (i, &q) in batch.iter().enumerate() {
            match (cached.query(q), eve.query(q)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.edges(), b.edges(), "round {round} slot {i}");
                    assert_eq!(
                        a.stats().upper_bound_edges,
                        b.stats().upper_bound_edges,
                        "round {round} slot {i}"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "round {round} slot {i}"),
                (a, b) => panic!("round {round} slot {i}: {a:?} vs {b:?}"),
            }
        }
    }
    assert!(
        cache.stats().purged_scoped > 0,
        "twelve delta rounds over a warm cache must scope-purge something"
    );
}
