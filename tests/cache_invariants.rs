//! Structural invariants of the versioned result cache.
//!
//! Three properties, independent of what the cached answers *are*:
//!
//! 1. **Budget** — after any interleaving of inserts, lookups, version
//!    purges and clears, the bytes charged across all shards never exceed
//!    the configured budget (proptest over random operation scripts);
//! 2. **LRU order** — under a scripted access trace on a single-shard cache
//!    the eviction order is exactly least-recently-used (scripted in the
//!    `spg-core` unit tests; re-checked here through the public API with a
//!    longer trace);
//! 3. **Version invalidation** — after a [`VersionedGraph`] bump, entries of
//!    the old snapshot are unreachable and the recomputed answers reflect
//!    the new graph.

use proptest::collection::vec;
use proptest::prelude::*;

use hop_spg::eve::{cache::entry_cost, CachedEve, Eve, EveStats, Query, SimplePathGraph, SpgCache};
use hop_spg::graph::{DiGraph, EdgeSubgraph, VersionedGraph};

/// A synthetic answer with `edges` edges, for deterministic cost scripting.
fn answer(tag: u32, edges: usize) -> SimplePathGraph {
    let list: Vec<(u32, u32)> = (0..edges as u32).map(|i| (tag * 1000 + i, i + 1)).collect();
    SimplePathGraph::from_parts(
        Query::new(0, 1, 1),
        EdgeSubgraph::from_edges(list),
        EveStats::default(),
    )
}

/// One scripted cache operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert an answer of the given size class under (version, s).
    Insert { version: u64, s: u32, edges: usize },
    /// Look up (version, s) — refreshes recency on a hit.
    Get { version: u64, s: u32 },
    /// Purge everything except the given version.
    Purge { keep: u64 },
    /// Drop everything.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..10, 0u64..3, 0u32..24, 0usize..120).prop_map(|(kind, version, s, edges)| match kind {
        0..=4 => Op::Insert {
            version: version + 1,
            s,
            edges,
        },
        5..=7 => Op::Get {
            version: version + 1,
            s,
        },
        8 => Op::Purge { keep: version + 1 },
        _ => Op::Clear,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The byte budget holds after *every* operation of a random script, for
    /// several budget / shard-count shapes, and the bytes/entries bookkeeping
    /// stays self-consistent (clearing reclaims everything).
    #[test]
    fn budget_never_exceeded_under_random_scripts(
        ops in vec(op_strategy(), 1..120),
        budget_kb in 1usize..8,
        shards in 1usize..5,
    ) {
        let budget = budget_kb * 512;
        let cache = SpgCache::with_shards(budget, shards);
        for op in &ops {
            match *op {
                Op::Insert { version, s, edges } => {
                    cache.insert(version, Query::new(s, s + 1, 3), &answer(s, edges));
                }
                Op::Get { version, s } => {
                    let _ = cache.get(version, Query::new(s, s + 1, 3));
                }
                Op::Purge { keep } => {
                    cache.purge_other_versions(keep);
                }
                Op::Clear => cache.clear(),
            }
            let bytes = cache.bytes();
            prop_assert!(
                bytes <= budget,
                "budget exceeded after {op:?}: {bytes} > {budget}"
            );
            let stats = cache.stats();
            prop_assert_eq!(stats.bytes, bytes);
            prop_assert_eq!(stats.entries, cache.len());
            prop_assert!(stats.entries == 0 || stats.bytes > 0);
        }
        cache.clear();
        prop_assert_eq!(cache.bytes(), 0);
        prop_assert_eq!(cache.len(), 0);
    }

    /// Heavier variant for the CI `--ignored` job: longer scripts, more
    /// shard shapes, and a cross-check that evicted + resident insertions
    /// balance the counters.
    #[test]
    #[ignore = "heavy invariant sweep; run via cargo test --release -- --ignored"]
    fn heavy_budget_and_counter_sweep(
        ops in vec(op_strategy(), 100..600),
        shards in 1usize..9,
    ) {
        let budget = 3 * 512;
        let cache = SpgCache::with_shards(budget, shards);
        for op in &ops {
            if let Op::Insert { version, s, edges } = *op {
                cache.insert(version, Query::new(s, s + 1, 3), &answer(s, edges));
            }
            prop_assert!(cache.bytes() <= budget);
        }
        let stats = cache.stats();
        // Every insertion either remains resident, was evicted, was purged/
        // cleared (not scripted here), or displaced by a same-key refresh;
        // with only inserts in this variant, resident + evicted can never
        // exceed insertions.
        prop_assert!(stats.entries as u64 + stats.evictions <= stats.insertions);
    }
}

/// LRU eviction order through the public API: a longer scripted trace on a
/// single-shard cache (exact global LRU), interleaving refreshes by both
/// `get` and re-`insert`.
#[test]
fn scripted_trace_evicts_in_lru_order() {
    let unit = entry_cost(&answer(0, 10));
    let cache = SpgCache::with_shards(3 * unit + unit / 2, 1); // fits 3
    let q = |s: u32| Query::new(s, s + 1, 3);

    cache.insert(1, q(0), &answer(0, 10)); // LRU: 0
    cache.insert(1, q(1), &answer(1, 10)); // LRU: 0 1
    cache.insert(1, q(2), &answer(2, 10)); // LRU: 0 1 2
    assert!(cache.get(1, q(0)).is_some()); // LRU: 1 2 0
    cache.insert(1, q(1), &answer(1, 10)); // refresh    LRU: 2 0 1
    cache.insert(1, q(3), &answer(3, 10)); // evicts 2   LRU: 0 1 3
    assert!(cache.get(1, q(2)).is_none(), "2 was least recently used");
    cache.insert(1, q(4), &answer(4, 10)); // evicts 0   LRU: 1 3 4
    assert!(cache.get(1, q(0)).is_none(), "0 went second");
    for survivor in [1u32, 3, 4] {
        assert!(cache.get(1, q(survivor)).is_some(), "{survivor} resident");
    }
    assert_eq!(cache.stats().evictions, 2);
    assert!(cache.bytes() <= cache.budget_bytes());
}

/// After a graph bump, old-version entries are unreachable and the cache
/// serves answers computed on the *new* snapshot — even for the same
/// `(s, t, k)` triple. Binding a `CachedEve` to the new snapshot eagerly
/// reclaims the retired version's entries, so nothing stale lingers.
#[test]
fn version_bump_makes_old_entries_unreachable() {
    // Chain 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 2.
    let mut vg = VersionedGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
    let cache = SpgCache::new(1 << 20);
    let old_version = vg.version();

    let q = Query::new(0, 3, 3);
    let with_shortcut = {
        let cached = CachedEve::with_defaults(&vg, &cache);
        let first = cached.query(q).unwrap();
        let hit = cached.query(q).unwrap();
        assert_eq!(first.edges(), hit.edges());
        first
    };
    assert!(with_shortcut.contains_edge(0, 2));
    assert_eq!(cache.stats().hits, 1);

    // Drop the shortcut edge; the answer for the same query changes.
    let new_version = vg.update(|g| {
        DiGraph::from_edges(
            g.vertex_count(),
            g.edges().filter(|&(u, v)| (u, v) != (0, 2)),
        )
    });
    assert!(new_version > old_version);

    let cached = CachedEve::with_defaults(&vg, &cache);
    let recomputed = cached.query(q).unwrap();
    assert!(
        !recomputed.contains_edge(0, 2),
        "post-bump answers reflect the new graph"
    );
    assert_eq!(
        recomputed.edges(),
        Eve::with_defaults(vg.graph()).query(q).unwrap().edges()
    );
    // The lookup on the new version was a miss: the old entry never served.
    assert_eq!(cache.stats().hits, 1, "no new hits after the bump");
    // Binding to the bumped snapshot eagerly purged the retired entry, so
    // only the freshly recomputed answer is resident.
    assert_eq!(cache.len(), 1, "stale entry reclaimed on bind");
    assert_eq!(cache.stats().purged_stale, 1);

    // A manual sweep finds nothing left to reclaim.
    assert_eq!(cache.purge_other_versions(cached.version()), 0);
    assert_eq!(cache.len(), 1);
    let served = cached.query(q).unwrap();
    assert_eq!(served.edges(), recomputed.edges());
}
