//! API-compatible subset of [`proptest` 1.4] for offline builds.
//!
//! Supports the surface this workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_filter_map`, implemented for integer ranges and tuples;
//! * [`collection::vec`] with a `Range<usize>` (or fixed) size;
//! * [`test_runner::Config`] (aliased to `ProptestConfig` in the prelude);
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Semantics match upstream with one deliberate exception: failing cases are
//! reported with the case number and seed but are **not shrunk** to a minimal
//! counterexample. Re-running is deterministic, so a reported failure always
//! reproduces.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// `try_sample` returns `None` when a filter rejects the drawn value; the
    /// runner then retries with fresh randomness (upstream calls this a
    /// "local reject").
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or `None` on filter rejection.
        fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Keeps only values `f` maps to `Some`, retrying otherwise.
        fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                base: self,
                f,
                _reason: reason,
            }
        }

        /// Keeps only values satisfying `f`, retrying otherwise.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                f,
                _reason: reason,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn try_sample(&self, rng: &mut TestRng) -> Option<U> {
            self.base.try_sample(rng).map(&self.f)
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn try_sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let seed = self.base.try_sample(rng)?;
            (self.f)(seed).try_sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        base: S,
        f: F,
        _reason: &'static str,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;

        fn try_sample(&self, rng: &mut TestRng) -> Option<U> {
            (self.f)(self.base.try_sample(rng)?)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        f: F,
        _reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn try_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.base.try_sample(rng).filter(&self.f)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn try_sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    Some(self.start + (rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.try_sample(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Admissible lengths for [`vec`], mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn try_sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.try_sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner (no shrinking).

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration, aliased to `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum filter rejections tolerated across the whole run.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Error raised by the `prop_assert*` family inside a test case.
    pub type TestCaseError = String;

    /// Runs `case` until `config.cases` samples pass, panicking on the first
    /// failure. `case` returns `Ok(None)` when every involved strategy filter
    /// rejected the draw.
    ///
    /// # Panics
    /// Panics when a case fails or the reject budget is exhausted.
    pub fn run<F>(test_name: &str, config: &Config, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<Option<()>, TestCaseError>,
    {
        // Deterministic per-test seed: same failures on every run.
        let mut seed: u64 = 0xC1AE_5E7E_D00D_F00D;
        for byte in test_name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3) ^ u64::from(byte);
        }
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(Some(())) => passed += 1,
                Ok(None) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest '{test_name}': too many filter rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
                Err(message) => panic!(
                    "proptest '{test_name}' failed at case {passed} (seed {seed:#x}, \
                     no shrinking in the vendored stub):\n{message}"
                ),
            }
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each function body runs for many sampled inputs;
/// use the `prop_assert*` macros for assertions so failures report the case.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all arm below.
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(stringify!($name), &config, |rng| {
                    $(
                        let sampled = match $crate::strategy::Strategy::try_sample(&($strat), rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => return ::core::result::Result::Ok(::core::option::Option::None),
                        };
                        #[allow(irrefutable_let_patterns)]
                        let $pat = sampled else {
                            return ::core::result::Result::Ok(::core::option::Option::None);
                        };
                    )+
                    $body
                    ::core::result::Result::Ok(::core::option::Option::Some(()))
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 5u32..9)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn vec_lengths(v in vec(0u32..100, 2..6usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 100, "element {} out of range", x);
            }
        }

        #[test]
        fn flat_map_and_filter_map(
            (n, v) in (2usize..8).prop_flat_map(|n| {
                (Just(n), vec(0usize..n, 1..4usize))
            }).prop_filter_map("nonempty", |(n, v)| {
                if v.is_empty() { None } else { Some((n, v)) }
            })
        ) {
            prop_assert!(!v.is_empty());
            for x in &v {
                prop_assert!(*x < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
