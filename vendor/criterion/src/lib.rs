//! API-compatible subset of [`criterion` 0.5] for offline builds.
//!
//! Provides the benchmarking surface this workspace uses — the [`Criterion`]
//! builder, [`benchmark_group`](Criterion::benchmark_group),
//! [`bench_function`](Criterion::bench_function), `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of upstream's bootstrapped statistics and HTML reports, each
//! benchmark is timed for roughly `measurement_time` and the mean, minimum
//! and maximum per-iteration wall-clock times are printed. That is enough to
//! compare algorithm variants locally and to keep `cargo bench` / CI smoke
//! runs honest; absolute rigor is explicitly out of scope for the stub.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver and configuration, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Sets the target duration of the sampling phase.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Applies command-line configuration (`cargo bench -- <filter>`).
    /// Harness flags passed by cargo itself are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--profile-time" => {
                    // `--profile-time` consumes a value; the others are flags
                    // cargo forwards to every bench binary.
                    if arg == "--profile-time" {
                        let _ = args.next();
                    }
                }
                "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') && self.filter.is_none() => {
                    self.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.0, &mut f);
        self
    }

    /// Runs a single benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Criterion
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
    }
}

/// Identifies one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Runs one benchmark in this group with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion
            .run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (upstream flushes reports here; the stub reports
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording up to
    /// `sample_size` samples within the measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let measure_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_end {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Defines a named group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines the benchmark `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(6).0, "6");
        assert_eq!(BenchmarkId::new("bfs", "deep").0, "bfs/deep");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }

    #[test]
    fn stub_runs_benchmarks_quickly() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u32, |b, &x| {
            runs += 1;
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
