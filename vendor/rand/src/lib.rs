//! Deterministic, API-compatible subset of [`rand` 0.8.5].
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`] and
//!   [`Rng::gen`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 — not cryptographic, but fast, uniform enough
//! for workload generation, and fully deterministic for a given seed, which
//! the seeded tests and dataset builders depend on.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return (rng.next_u64() as i64) as $t;
                }
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }

    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Upstream `StdRng` is ChaCha12; this stub trades its cryptographic
    /// quality for zero dependencies while keeping the same construction API
    /// and full determinism per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias so code written against `SmallRng` also works.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::Rng;

    /// Slice extensions for random selection and shuffling.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: u32 = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
