//! # hop-spg — Hop-constrained s-t Simple Path Graph generation
//!
//! Umbrella crate for the Rust reproduction of *"Towards Generating
//! Hop-constrained s-t Simple Path Graphs"* (SIGMOD 2023). It re-exports the
//! public APIs of the workspace crates so downstream users only need a single
//! dependency:
//!
//! * [`graph`] — the directed graph substrate (CSR storage, traversal,
//!   generators, IO).
//! * [`eve`] — the paper's contribution: the EVE algorithm producing
//!   [`eve::SimplePathGraph`] answers.
//! * [`baselines`] — simple path enumeration algorithms and the KHSQ/KHSQ+
//!   k-hop subgraph constructions used as baselines.
//! * [`workloads`] — synthetic datasets and query workloads mirroring the
//!   paper's evaluation.
//! * [`server`] — the online serving engine: a TCP frontend that admits
//!   continuous traffic into deadline-bounded micro-batches over the cached,
//!   singleflight-deduplicated batch executor.
//!
//! ## Quick example
//!
//! ```
//! use hop_spg::graph::DiGraph;
//! use hop_spg::eve::{Eve, EveConfig, Query};
//!
//! // The graph of Figure 1(a) in the paper.
//! let g = DiGraph::from_edges(
//!     8,
//!     [
//!         (0, 1), (0, 2), (1, 2), (2, 1), (2, 3), (1, 4), (4, 5), (5, 3),
//!         (3, 1), (5, 0), (2, 6), (4, 6), (6, 7), (7, 5),
//!     ],
//! );
//! let eve = Eve::new(&g, EveConfig::default());
//! let spg = eve.query(Query::new(0, 3, 4)).unwrap();
//! assert!(spg.edge_count() > 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spg_baselines as baselines;
pub use spg_core as eve;
pub use spg_graph as graph;
pub use spg_server as server;
pub use spg_workloads as workloads;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
