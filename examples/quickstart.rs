//! Quickstart: generate a hop-constrained s-t simple path graph with EVE.
//!
//! Runs the paper's running example (Figure 1) end to end and prints the
//! answer for several hop constraints, together with the per-phase
//! statistics EVE collects.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hop_spg::eve::paper_example::{figure1_graph, names};
use hop_spg::eve::{Eve, EveConfig, Query};

fn main() {
    let graph = figure1_graph();
    println!(
        "Figure 1(a) graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    let eve = Eve::new(&graph, EveConfig::default());
    for k in [2u32, 4, 7] {
        let query = Query::new(names::S, names::T, k);
        let spg = eve.query(query).expect("valid query");
        println!(
            "\nSPG_{k}(s, t): {} edges, {} vertices",
            spg.edge_count(),
            spg.vertex_count()
        );
        for &(u, v) in spg.edges() {
            println!("  {} -> {}", names::label(u), names::label(v));
        }
        let stats = spg.stats();
        println!(
            "  upper bound: {} edges ({} definite, {} undetermined, {} failing)",
            stats.upper_bound_edges,
            stats.labeling.definite,
            stats.labeling.undetermined,
            stats.labeling.failing
        );
        println!(
            "  phases: distance {:?}, propagation {:?}, labeling {:?}, verification {:?}",
            stats.timings.distance,
            stats.timings.propagation,
            stats.timings.labeling,
            stats.timings.verification
        );
    }
}
