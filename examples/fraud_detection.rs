//! Fraud detection case study (paper §6.9, Figure 13(a)).
//!
//! Generates a synthetic transaction network with planted fraud rings, flags
//! one transaction, and extracts every account and transaction lying on a
//! short simple cycle through the flagged transaction within a 7-day window —
//! which is exactly a hop-constrained s-t simple path graph query.
//!
//! ```text
//! cargo run --example fraud_detection
//! ```

use hop_spg::graph::generators::TransactionGraphConfig;
use hop_spg::workloads::fraud::{investigate, FraudCaseConfig};

fn main() {
    let config = FraudCaseConfig {
        network: TransactionGraphConfig {
            accounts: 2_000,
            background_transactions: 20_000,
            fraud_rings: 4,
            ring_length: 5,
            horizon_days: 90.0,
            fraud_window_days: 7.0,
            seed: 2023,
        },
        k: 5,
        window_days: 7.0,
    };

    let investigation = investigate(config);
    let (t, s) = investigation.hot_edge;
    println!(
        "transaction network within the 7-day window: {} accounts, {} transfers",
        investigation.window_graph.vertex_count(),
        investigation.window_graph.edge_count()
    );
    println!("flagged transaction: account {t} -> account {s}");
    println!(
        "suspicious subgraph: {} accounts, {} transactions",
        investigation.suspicious_accounts(),
        investigation.suspicious_transactions()
    );
    println!(
        "recall against the planted fraud rings: {:.1}%",
        investigation.recall() * 100.0
    );
    println!("\nsuspicious transactions (edges of SPG_5):");
    for &(u, v) in investigation.suspicious.edges() {
        println!("  {u} -> {v}");
    }
}
