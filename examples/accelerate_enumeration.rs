//! Accelerating hop-constrained simple path enumeration with EVE
//! (paper §6.7, Table 4).
//!
//! PathEnum — the state-of-the-art enumerator — can be sped up by first
//! generating `SPG_k(s, t)` with EVE and then enumerating on that (much
//! smaller) graph instead of on the full input graph. This example measures
//! the effect on a simulated web graph and prints the speedup, also showing
//! the looser `G^k_st` subgraph (KHSQ+) for comparison.
//!
//! ```text
//! cargo run --release --example accelerate_enumeration
//! ```

use std::time::Instant;

use hop_spg::baselines::{khsq_plus, CountPaths, PathEnumIndex};
use hop_spg::eve::{Eve, EveConfig};
use hop_spg::workloads::{dataset_by_code, reachable_queries, DatasetScale};

fn main() {
    let spec = dataset_by_code("bk").expect("dataset registered");
    let graph = spec.build(DatasetScale::Quick);
    println!(
        "dataset {} ({}): {} vertices, {} edges",
        spec.code,
        spec.paper_name,
        graph.vertex_count(),
        graph.edge_count()
    );

    let k = 5;
    let queries = reachable_queries(&graph, 20, k, 11);
    let eve = Eve::new(&graph, EveConfig::default());

    let mut time_plain = std::time::Duration::ZERO;
    let mut time_with_spg = std::time::Duration::ZERO;
    let mut time_with_gkst = std::time::Duration::ZERO;
    let mut total_paths = 0u64;

    for &q in &queries {
        // PathEnum on the original graph.
        let start = Instant::now();
        let mut sink = CountPaths::new();
        PathEnumIndex::build(&graph, q.source, q.target, q.k).enumerate(&mut sink);
        time_plain += start.elapsed();
        total_paths += sink.count();

        // EVE + PathEnum on SPG_k (the speedup of Table 4).
        let start = Instant::now();
        let spg = eve.query(q).expect("valid query");
        let reduced = spg.to_graph(graph.vertex_count());
        let mut sink2 = CountPaths::new();
        PathEnumIndex::build(&reduced, q.source, q.target, q.k).enumerate(&mut sink2);
        time_with_spg += start.elapsed();
        assert_eq!(sink.count(), sink2.count(), "SPG must preserve all paths");

        // KHSQ+ + PathEnum on G^k_st (the weaker acceleration of Table 4).
        let start = Instant::now();
        let (gkst, _) = khsq_plus(&graph, q.source, q.target, q.k);
        let reduced = gkst.to_graph(graph.vertex_count());
        let mut sink3 = CountPaths::new();
        PathEnumIndex::build(&reduced, q.source, q.target, q.k).enumerate(&mut sink3);
        time_with_gkst += start.elapsed();
        assert_eq!(
            sink.count(),
            sink3.count(),
            "G^k_st must preserve all paths"
        );
    }

    println!(
        "queries: {}   k = {k}   total paths: {total_paths}",
        queries.len()
    );
    println!("PathEnum on G              : {time_plain:?}");
    println!(
        "EVE + PathEnum on SPG_k    : {time_with_spg:?}  (speedup {:.2}x)",
        time_plain.as_secs_f64() / time_with_spg.as_secs_f64().max(1e-12)
    );
    println!(
        "KHSQ+ + PathEnum on G^k_st : {time_with_gkst:?}  (speedup {:.2}x)",
        time_plain.as_secs_f64() / time_with_gkst.as_secs_f64().max(1e-12)
    );
}
