//! Relation visualization (paper §1.1, Figure 2(a)).
//!
//! Visualization systems such as RelFinder display the *graph* of all short
//! simple paths between two entities instead of listing every path. This
//! example builds a community-structured knowledge-graph stand-in, picks two
//! entities, and emits the simple path graph in Graphviz DOT format so it can
//! be rendered with `dot -Tsvg`.
//!
//! ```text
//! cargo run --example relation_visualization > relations.dot
//! ```

use hop_spg::eve::{Eve, EveConfig, Query};
use hop_spg::graph::generators::community_graph;
use hop_spg::workloads::reachable_queries;

fn main() {
    // A small "entity graph" with four dense communities.
    let graph = community_graph(240, 4, 0.08, 0.004, 7);
    eprintln!(
        "entity graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // Pick a reproducible 4-hop-reachable entity pair.
    let query: Query = reachable_queries(&graph, 1, 4, 42)
        .into_iter()
        .next()
        .expect("the community graph is well connected");
    eprintln!("query: {query}");

    let eve = Eve::new(&graph, EveConfig::default());
    let spg = eve.query(query).expect("valid query");
    eprintln!(
        "relation graph: {} vertices, {} edges (out of {} edges in the full graph)",
        spg.vertex_count(),
        spg.edge_count(),
        graph.edge_count()
    );

    // Emit DOT on stdout.
    println!("digraph relations {{");
    println!("  rankdir=LR;");
    println!(
        "  {} [shape=doublecircle, style=filled, fillcolor=lightblue];",
        query.source
    );
    println!(
        "  {} [shape=doublecircle, style=filled, fillcolor=lightgreen];",
        query.target
    );
    for &(u, v) in spg.edges() {
        println!("  {u} -> {v};");
    }
    println!("}}");
}
